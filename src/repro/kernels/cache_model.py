"""Ideal-cache simulation: why recursive kernels beat iterative ones.

The paper's central shared-memory claim (§III, §V-C) is that loop-based
GEP kernels lose *temporal* locality once the tile no longer fits in L2,
while the recursive R-DP kernels are cache-oblivious — I/O-efficient at
every level of the hierarchy without tuning.  This module makes that
claim measurable offline: an LRU ideal-cache simulator
(:class:`LRUCache`) processes the *actual memory-access pattern* of the
two kernel families and counts misses.

The access walkers mirror the kernels' loop/recursion structure at
element granularity.  A consistency test
(``tests/test_cache_model.py``) checks that each walker touches exactly
the update count reported by the real kernels' :class:`KernelStats`,
so the traces cannot silently drift from the implementations.

Expected asymptotics (Frigo et al.; Chowdhury & Ramachandran):

* iterative GEP:  Θ(n³ / L) misses once n² exceeds the cache,
* recursive GEP:  Θ(n³ / (L·√M)) misses — the crossover the paper's
  Fig. 6 attributes to the L2 boundary between block sizes 512 and 1024.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..core.gep import GepSpec
from .recursive import CASE_FLAGS, _splits

__all__ = ["LRUCache", "CacheReport", "iterative_gep_misses", "recursive_gep_misses"]


@dataclass
class CacheReport:
    """Outcome of one simulated kernel execution."""

    accesses: int
    misses: int
    capacity_bytes: int
    line_bytes: int
    updates: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class LRUCache:
    """Fully-associative LRU cache of fixed byte capacity and line size.

    Addresses are ``(array_id, byte_offset)``; ``access_range`` touches a
    contiguous byte run and charges one hit/miss per cache line.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64) -> None:
        if line_bytes <= 0 or capacity_bytes < line_bytes:
            raise ValueError("capacity must hold at least one line")
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self.capacity_bytes = capacity_bytes
        self._lines: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def access_range(self, array_id: int, start: int, nbytes: int) -> None:
        """Touch bytes ``[start, start + nbytes)`` of array ``array_id``."""
        if nbytes <= 0:
            return
        first = start // self.line_bytes
        last = (start + nbytes - 1) // self.line_bytes
        lines = self._lines
        for line in range(first, last + 1):
            key = (array_id, line)
            self.accesses += 1
            if key in lines:
                lines.move_to_end(key)
            else:
                self.misses += 1
                lines[key] = None
                if len(lines) > self.capacity_lines:
                    lines.popitem(last=False)

    def report(self) -> CacheReport:
        return CacheReport(self.accesses, self.misses, self.capacity_bytes, self.line_bytes)


# ----------------------------------------------------------------------
# Access walkers (element granularity, row-major float64 layout)
# ----------------------------------------------------------------------
_ELEM = 8  # float64


class _Table:
    """Address helper for an n x n row-major table in one array."""

    def __init__(self, n: int, array_id: int = 0) -> None:
        self.n = n
        self.array_id = array_id

    def row_bytes(self, i: int, j0: int, j1: int) -> tuple[int, int]:
        return ((i * self.n + j0) * _ELEM, (j1 - j0) * _ELEM)

    def cell(self, i: int, j: int) -> tuple[int, int]:
        return ((i * self.n + j) * _ELEM, _ELEM)


def _touch_tile(cache: LRUCache, t: _Table, i0: int, i1: int, j0: int, j1: int) -> None:
    for i in range(i0, i1):
        start, nbytes = t.row_bytes(i, j0, j1)
        cache.access_range(t.array_id, start, nbytes)


def iterative_gep_misses(
    spec: GepSpec,
    n: int,
    capacity_bytes: int,
    line_bytes: int = 64,
) -> CacheReport:
    """Miss count of the per-``k`` iterative kernel on an n x n table.

    Per step ``k`` the kernel streams the Σ_G-active region row by row
    while re-reading column ``k`` (one strided element per row) and row
    ``k`` — exactly the traffic of ``gep_tile_update`` on the full table.
    """
    cache = LRUCache(capacity_bytes, line_bytes)
    t = _Table(n)
    updates = 0
    for k in range(n):
        if not spec.k_active(k, n):
            continue
        i0 = k + 1 if spec.constrains_i else 0
        j0 = k + 1 if spec.constrains_j else 0
        if i0 >= n or j0 >= n:
            continue
        updates += (n - i0) * (n - j0)
        # v-row (c[k, j0:n]) is read once per step and stays hot.
        start, nbytes = t.row_bytes(k, j0, n)
        cache.access_range(t.array_id, start, nbytes)
        cache.access_range(t.array_id, *t.cell(k, k))
        for i in range(i0, n):
            cache.access_range(t.array_id, *t.cell(i, k))  # u-column element
            start, nbytes = t.row_bytes(i, j0, n)
            cache.access_range(t.array_id, start, nbytes)  # x-row update
    report = cache.report()
    report.updates = updates
    return report


def recursive_gep_misses(
    spec: GepSpec,
    n: int,
    capacity_bytes: int,
    r_shared: int = 2,
    base_size: int = 16,
    line_bytes: int = 64,
) -> CacheReport:
    """Miss count of the r-way recursive kernel on an n x n table.

    Replays the exact divide-&-conquer structure of
    :class:`~repro.kernels.recursive.RecursiveKernel` (same ``_splits``,
    same case dispatch and stage order) and, at each base case, the
    per-``k`` traffic of the iterative tile kernel restricted to the
    tile — which is what the real kernel executes.
    """
    cache = LRUCache(capacity_bytes, line_bytes)
    t = _Table(n)
    update_count = [0]

    def base(case, xi, xj, ui, uk, vk, vj, wk, gi0, gj0, gk0):
        # (xi, xj): x row/col ranges; u cols = pivot; v rows = pivot.
        for kk in range(wk[1] - wk[0]):
            gk = gk0 + kk
            if not spec.k_active(gk, n):
                continue
            i_lo = max(xi[0], gk + 1) if spec.constrains_i else xi[0]
            j_lo = max(xj[0], gk + 1) if spec.constrains_j else xj[0]
            if i_lo >= xi[1] or j_lo >= xj[1]:
                continue
            update_count[0] += (xi[1] - i_lo) * (xj[1] - j_lo)
            cache.access_range(t.array_id, *t.cell(wk[0] + kk, wk[0] + kk))
            start, nbytes = t.row_bytes(vk[0] + kk, j_lo - xj[0] + vj[0], vj[1])
            cache.access_range(t.array_id, start, nbytes)
            for i in range(i_lo, xi[1]):
                cache.access_range(
                    t.array_id, *t.cell(ui[0] + (i - xi[0]), uk[0] + kk)
                )
                start, nbytes = t.row_bytes(i, j_lo, xj[1])
                cache.access_range(t.array_id, start, nbytes)

    def rec(case, xi, xj, ui, uk, vk, vj, wk, gi0, gj0, gk0):
        row_aliased, col_aliased = CASE_FLAGS[case]
        extent_i, extent_j = xi[1] - xi[0], xj[1] - xj[0]
        pivot = wk[1] - wk[0]
        if max(extent_i, extent_j, pivot) <= base_size:
            base(case, xi, xj, ui, uk, vk, vj, wk, gi0, gj0, gk0)
            return
        bk = _splits(pivot, r_shared)
        bi = bk if row_aliased else _splits(extent_i, r_shared)
        bj = bk if col_aliased else _splits(extent_j, r_shared)
        nk, ni, nj = len(bk) - 1, len(bi) - 1, len(bj) - 1
        for k in range(nk):
            wk_s = (wk[0] + bk[k], wk[0] + bk[k + 1])
            gk_s = gk0 + bk[k]

            def call(sub_case, i, j):
                xi_s = (xi[0] + bi[i], xi[0] + bi[i + 1])
                xj_s = (xj[0] + bj[j], xj[0] + bj[j + 1])
                if col_aliased:
                    ui_s = (xi[0] + bi[i], xi[0] + bi[i + 1])
                    uk_s = (xj[0] + bk[k], xj[0] + bk[k + 1])
                else:
                    ui_s = (ui[0] + bi[i], ui[0] + bi[i + 1])
                    uk_s = (uk[0] + bk[k], uk[0] + bk[k + 1])
                if row_aliased:
                    vk_s = (xi[0] + bk[k], xi[0] + bk[k + 1])
                    vj_s = (xj[0] + bj[j], xj[0] + bj[j + 1])
                else:
                    vk_s = (vk[0] + bk[k], vk[0] + bk[k + 1])
                    vj_s = (vj[0] + bj[j], vj[0] + bj[j + 1])
                rec(
                    sub_case, xi_s, xj_s, ui_s, uk_s, vk_s, vj_s, wk_s,
                    gi0 + bi[i], gj0 + bj[j], gk_s,
                )

            if row_aliased:
                rows = (
                    range(k + 1, ni)
                    if spec.constrains_i
                    else [i for i in range(ni) if i != k]
                )
            else:
                rows = range(ni)
            if col_aliased:
                cols = (
                    range(k + 1, nj)
                    if spec.constrains_j
                    else [j for j in range(nj) if j != k]
                )
            else:
                cols = range(nj)

            if row_aliased and col_aliased:
                call("A", k, k)
                for j in cols:
                    call("B", k, j)
                for i in rows:
                    call("C", i, k)
                for i in rows:
                    for j in cols:
                        call("D", i, j)
            elif row_aliased:
                for j in range(nj):
                    call("B", k, j)
                for i in rows:
                    for j in range(nj):
                        call("D", i, j)
            elif col_aliased:
                for i in range(ni):
                    call("C", i, k)
                for j in cols:
                    for i in range(ni):
                        call("D", i, j)
            else:
                for i in range(ni):
                    for j in range(nj):
                        call("D", i, j)

    full = (0, n)
    rec("A", full, full, full, full, full, full, full, 0, 0, 0)
    report = cache.report()
    report.updates = update_count[0]
    return report
