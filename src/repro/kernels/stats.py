"""Work accounting shared by all tile kernels.

The cluster cost model (``repro.cluster.costmodel``) prices a traced
execution from *counts*, not wall-clock: every kernel invocation reports
how many GEP cell-updates it performed and at which tile geometry.  A
:class:`KernelStats` collects those counts; kernels accept an optional
stats sink so production runs can skip accounting entirely.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["KernelStats", "KernelInvocation", "LockingKernelStats"]


@dataclass(frozen=True)
class KernelInvocation:
    """One tile-kernel call: case name, tile geometry, work performed."""

    case: str
    rows: int
    cols: int
    pivot: int
    updates: int


@dataclass
class KernelStats:
    """Aggregated kernel-side work counters.

    Attributes
    ----------
    updates:
        Total GEP cell updates (``Σ K*mi*mj`` over unmasked work).
    invocations:
        Count of base-case kernel invocations per case name.
    recursion_calls:
        Count of recursive (non-base) calls, i.e. divide steps.
    parallel_stages:
        Number of parallel-for stages issued to the OpenMP runtime.
    max_parallel_width:
        Largest simultaneous task count handed to one parallel-for.
    """

    updates: int = 0
    invocations: Counter = field(default_factory=Counter)
    recursion_calls: int = 0
    parallel_stages: int = 0
    max_parallel_width: int = 0
    log: list[KernelInvocation] = field(default_factory=list)
    keep_log: bool = False

    def record_base(self, case: str, rows: int, cols: int, pivot: int, updates: int) -> None:
        """Record one base-case kernel invocation."""
        self.updates += updates
        self.invocations[case] += 1
        if self.keep_log:
            self.log.append(KernelInvocation(case, rows, cols, pivot, updates))

    def record_recursion(self) -> None:
        self.recursion_calls += 1

    def record_parallel_for(self, width: int) -> None:
        self.parallel_stages += 1
        if width > self.max_parallel_width:
            self.max_parallel_width = width

    def merge(self, other: "KernelStats") -> None:
        """Fold another stats object into this one (e.g. per-task sinks)."""
        self.updates += other.updates
        self.invocations.update(other.invocations)
        self.recursion_calls += other.recursion_calls
        self.parallel_stages += other.parallel_stages
        self.max_parallel_width = max(self.max_parallel_width, other.max_parallel_width)
        if self.keep_log:
            self.log.extend(other.log)

    @property
    def total_invocations(self) -> int:
        return sum(self.invocations.values())


class LockingKernelStats(KernelStats):
    """Thread-safe stats sink for kernels running inside executor tasks.

    Engine tasks execute on a thread pool; a shared sink must serialize
    its counter updates.  Only the mutating entry points take the lock —
    reads are driver-side, after jobs complete.
    """

    def __init__(self, keep_log: bool = False) -> None:
        super().__init__(keep_log=keep_log)
        import threading

        self._lock = threading.Lock()

    def record_base(self, case, rows, cols, pivot, updates):  # noqa: D102
        with self._lock:
            super().record_base(case, rows, cols, pivot, updates)

    def record_recursion(self):  # noqa: D102
        with self._lock:
            super().record_recursion()

    def record_parallel_for(self, width):  # noqa: D102
        with self._lock:
            super().record_parallel_for(width)

    def merge(self, other):  # noqa: D102
        with self._lock:
            super().merge(other)
