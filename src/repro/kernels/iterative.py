"""Iterative (loop-based) GEP tile kernels.

These are the paper's "iterative kernels": per-``k`` passes over the
tile, vectorized with NumPy — the offline equivalent of its
Numba-jitted/NumPy-offloaded kernels.  A deliberately slow pure-Python
scalar variant (:func:`gep_tile_update_loop`) exists as the reference the
vectorized kernel is validated against.

Kernel contract
---------------
All four blocked-GEP cases (A/B/C/D, paper Fig. 4 / Fig. 7) reduce to one
generic tile update::

    gep_tile_update(spec, x, u, v, w, gi0, gj0, gk0, n_global)

where ``x`` is the (mi, mj) tile being updated *in place* at global
offset ``(gi0, gj0)``, and for each global pivot step ``gk = gk0 + kk``:

* ``u[:, kk]``  holds ``c[i, gk]``   (U tile: x's rows x pivot columns),
* ``v[kk, :]``  holds ``c[gk, j]``   (V tile: pivot rows x x's columns),
* ``w[kk, kk]`` holds ``c[gk, gk]``  (W: the pivot tile).

The aliasing pattern encodes the case: A passes ``u is v is w is x``,
B passes ``v is x``, C passes ``u is x``, D passes four distinct tiles.
Reads of aliased views stay correct because Σ_G (or semiring identity
no-ops) pins row/column ``kk`` during step ``kk``, and because
``GepSpec.apply_k`` materializes the combination before writing.
"""

from __future__ import annotations

import numpy as np

from ..core.gep import GepSpec
from .stats import KernelStats

__all__ = ["gep_tile_update", "gep_tile_update_loop", "IterativeKernel"]


def gep_tile_update(
    spec: GepSpec,
    x: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    gi0: int,
    gj0: int,
    gk0: int,
    n_global: int,
    stats: KernelStats | None = None,
    case: str = "?",
) -> None:
    """Apply all pivot steps of tile ``w``'s range to tile ``x`` in place.

    ``w`` may be ``None`` when the spec declares ``needs_w = False``
    (semiring folds): the pivot extent is then taken from ``u``, and the
    ``c[k,k]`` argument passed to ``apply_k`` is ``None``.
    """
    if w is None:
        if spec.needs_w:
            raise ValueError(f"spec {spec.name!r} requires the pivot tile W")
        pivot = u.shape[1]
    else:
        pivot = w.shape[0]
        if w.shape[0] != w.shape[1]:
            raise ValueError(f"pivot tile must be square, got {w.shape}")
    if u.shape != (x.shape[0], pivot):
        raise ValueError(f"U tile shape {u.shape} != {(x.shape[0], pivot)}")
    if v.shape != (pivot, x.shape[1]):
        raise ValueError(f"V tile shape {v.shape} != {(pivot, x.shape[1])}")
    # Fast path: when no step of this tile's pivot range needs a Σ_G
    # mask (checked once — mask-freedom is monotone in gk) and every
    # step is active, the per-``kk`` spec probes (two Python calls plus
    # possible mask-array allocation each) hoist out of the loop
    # entirely.  This is the hot shape: FW/TC tiles are never masked,
    # and GE tiles strictly below/right of the pivot stop being masked
    # as soon as ``gi0 > gk`` / ``gj0 > gk``.
    if spec.sigma_mask_free(gi0, gj0, x.shape, gk0, gk0 + pivot) and all(
        spec.k_active(gk0 + kk, n_global) for kk in range(pivot)
    ):
        w_diag = None if w is None else w.diagonal()
        for kk in range(pivot):
            spec.apply_k(
                x, u[:, kk], v[kk, :], None if w is None else w_diag[kk], None
            )
        if stats is not None:
            stats.record_base(case, x.shape[0], x.shape[1], pivot, x.size * pivot)
        return
    updates = 0
    for kk in range(pivot):
        gk = gk0 + kk
        if not spec.k_active(gk, n_global):
            continue
        mask = spec.sigma_mask(gi0, gj0, x.shape, gk)
        if mask is not None:
            active = int(mask.sum())
            if active == 0:
                continue
            updates += active
        else:
            updates += x.size
        spec.apply_k(x, u[:, kk], v[kk, :], None if w is None else w[kk, kk], mask)
    if stats is not None:
        stats.record_base(case, x.shape[0], x.shape[1], pivot, updates)


def gep_tile_update_loop(
    spec: GepSpec,
    x: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    gi0: int,
    gj0: int,
    gk0: int,
    n_global: int,
) -> None:
    """Scalar triple-loop tile update — the honest reference semantics.

    Iterates exactly like the paper's Fig. 1 restricted to this tile's
    index ranges.  Quadratically slower than :func:`gep_tile_update`;
    used only in tests and micro-ablation benchmarks.
    """
    pivot = u.shape[1] if w is None else w.shape[0]
    mi, mj = x.shape
    for kk in range(pivot):
        gk = gk0 + kk
        if not spec.k_active(gk, n_global):
            continue
        w_kk = None if w is None else w[kk, kk]
        for a in range(mi):
            gi = gi0 + a
            for b in range(mj):
                gj = gj0 + b
                if spec.sigma(gi, gj, gk):
                    x[a, b] = spec.f(x[a, b], u[a, kk], v[kk, b], w_kk)


class IterativeKernel:
    """The paper's iterative tile kernel, bundled with work accounting.

    Parameters
    ----------
    spec:
        The GEP problem this kernel computes.
    pure_loop:
        Use the scalar reference loop instead of the vectorized per-``k``
        form (ablation of the "offload to bare metal" effect).
    """

    kind = "iterative"

    def __init__(self, spec: GepSpec, *, pure_loop: bool = False) -> None:
        self.spec = spec
        self.pure_loop = pure_loop

    def run(
        self,
        case: str,
        x: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        gi0: int,
        gj0: int,
        gk0: int,
        n_global: int,
        stats: KernelStats | None = None,
    ) -> None:
        """Run one tile-kernel invocation (case ∈ {A, B, C, D})."""
        if self.pure_loop:
            gep_tile_update_loop(self.spec, x, u, v, w, gi0, gj0, gk0, n_global)
            if stats is not None:
                pivot = u.shape[1] if w is None else w.shape[0]
                stats.record_base(case, x.shape[0], x.shape[1], pivot, 0)
        else:
            gep_tile_update(
                self.spec, x, u, v, w, gi0, gj0, gk0, n_global, stats, case
            )

    def describe(self) -> dict:
        """Kernel metadata recorded into execution traces."""
        return {"kind": self.kind, "pure_loop": self.pure_loop}
