"""Parametric r-way recursive divide-&-conquer (r-way R-DP) tile kernels.

This module implements the paper's §IV kernels (Fig. 4) *generically* for
any :class:`~repro.core.gep.GepSpec`.  The four blocked-GEP cases are
encoded by which of the updated tile's axes alias the pivot range:

========  ===========  ===========  =================================
case      rows=pivot?  cols=pivot?  paper function (GE instance)
========  ===========  ===========  =================================
``A``     yes          yes          ``A_GE(X, r)``
``B``     yes          no           ``B_GE(X, U, W, r)``
``C``     no           yes          ``C_GE(X, V, W, r)``
``D``     no           no           ``D_GE(X, U, V, W, r)``
========  ===========  ===========  =================================

Each recursive call splits every axis into (at most) ``r`` near-equal
parts and re-dispatches sub-tiles by the same aliasing classification;
sub-calls execute in the dependency-minimal stage order derived by the
inline-and-optimize methodology (A, then B‖C, then D within every
sub-iteration), with each stage's independent calls issued to the
simulated OpenMP runtime as one ``parallel_for``.  Reaching the base
size, the iterative tile kernel runs.  The axis loop ranges follow the
spec's Σ_G constraints (``i > k``/``j > k`` for GE, ``≠ k`` for FW),
which reproduces Fig. 4's ranges exactly.

Everything operates on NumPy *views* of the caller's tile — the
recursion allocates no copies (the guides' "views, not copies" rule, and
the reason the kernels are I/O-efficient).
"""

from __future__ import annotations

import numpy as np

from ..core.gep import GepSpec
from ..util import near_equal_splits
from .iterative import gep_tile_update
from .openmp import OmpRuntime, SerialRuntime
from .stats import KernelStats

__all__ = ["RecursiveKernel", "CASE_FLAGS", "case_of"]

#: case name -> (row_aliased, col_aliased)
CASE_FLAGS: dict[str, tuple[bool, bool]] = {
    "A": (True, True),
    "B": (True, False),
    "C": (False, True),
    "D": (False, False),
}


def case_of(row_aliased: bool, col_aliased: bool) -> str:
    """Inverse of :data:`CASE_FLAGS`."""
    if row_aliased:
        return "A" if col_aliased else "B"
    return "C" if col_aliased else "D"


def _splits(extent: int, r: int) -> list[int]:
    """Boundaries of ``min(r, extent)`` near-equal contiguous parts.

    Blocked GEP is correct for *any* contiguous partition of the index
    range, so uneven splits (when ``r`` does not divide ``extent``) need
    no virtual padding at this level.
    """
    return near_equal_splits(extent, r)


class RecursiveKernel:
    """r_shared-way R-DP kernel over a GEP spec.

    Parameters
    ----------
    spec:
        The GEP problem.
    r_shared:
        Recursive fan-out (the paper's ``r_shared``), >= 2.
    base_size:
        Tiles with every extent <= ``base_size`` run the iterative base
        kernel.  This is the cache-level tuning knob; the recursion is
        otherwise cache-oblivious.
    runtime:
        Simulated OpenMP runtime; defaults to serial execution.
    """

    kind = "recursive"

    def __init__(
        self,
        spec: GepSpec,
        r_shared: int = 2,
        base_size: int = 64,
        runtime: OmpRuntime | None = None,
    ) -> None:
        if r_shared < 2:
            raise ValueError("r_shared must be >= 2")
        if base_size < 1:
            raise ValueError("base_size must be >= 1")
        self.spec = spec
        self.r_shared = r_shared
        self.base_size = base_size
        self.runtime = runtime if runtime is not None else SerialRuntime()

    # ------------------------------------------------------------------
    def run(
        self,
        case: str,
        x: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        gi0: int,
        gj0: int,
        gk0: int,
        n_global: int,
        stats: KernelStats | None = None,
    ) -> None:
        """Entry point with the same contract as :class:`IterativeKernel`."""
        if case not in CASE_FLAGS:
            raise ValueError(f"unknown kernel case {case!r}")
        self._rec(case, x, u, v, w, gi0, gj0, gk0, n_global, stats)

    # ------------------------------------------------------------------
    def _rec(self, case, x, u, v, w, gi0, gj0, gk0, n_global, stats) -> None:
        # ``w is None`` is legal for case D of specs with needs_w=False
        # (the paper's FW-APSP driver ships no pivot copy to D kernels).
        pivot = u.shape[1] if w is None else w.shape[0]
        if max(x.shape[0], x.shape[1], pivot) <= self.base_size:
            gep_tile_update(
                self.spec, x, u, v, w, gi0, gj0, gk0, n_global, stats, case
            )
            return
        if stats is not None:
            stats.record_recursion()
        row_aliased, col_aliased = CASE_FLAGS[case]
        r = self.r_shared
        bk = _splits(pivot, r)
        bi = bk if row_aliased else _splits(x.shape[0], r)
        bj = bk if col_aliased else _splits(x.shape[1], r)
        nk, ni, nj = len(bk) - 1, len(bi) - 1, len(bj) - 1

        def xs(i, j):
            return x[bi[i] : bi[i + 1], bj[j] : bj[j + 1]]

        def us(i, k):
            # When columns alias the pivot, c[i-range, k-range] lives in x
            # itself (and bj == bk); otherwise it comes from the U tile.
            src = x if col_aliased else u
            return src[bi[i] : bi[i + 1], bk[k] : bk[k + 1]]

        def vs(k, j):
            if row_aliased:
                return x[bk[k] : bk[k + 1], bj[j] : bj[j + 1]]
            return v[bk[k] : bk[k + 1], bj[j] : bj[j + 1]]

        def ws(k):
            if row_aliased and col_aliased:
                return x[bk[k] : bk[k + 1], bk[k] : bk[k + 1]]
            if w is None:
                return None
            return w[bk[k] : bk[k + 1], bk[k] : bk[k + 1]]

        spec = self.spec
        for k in range(nk):
            gk_sub = gk0 + bk[k]
            w_sub = ws(k)

            def call(sub_case, i, j):
                self._rec(
                    sub_case,
                    xs(i, j),
                    us(i, k),
                    vs(k, j),
                    w_sub,
                    gi0 + bi[i],
                    gj0 + bj[j],
                    gk_sub,
                    n_global,
                    stats,
                )

            # Row/column index ranges at this sub-iteration, following Σ_G.
            if row_aliased:
                other_rows = (
                    range(k + 1, ni)
                    if spec.constrains_i
                    else [i for i in range(ni) if i != k]
                )
            else:
                other_rows = range(ni)
            if col_aliased:
                other_cols = (
                    range(k + 1, nj)
                    if spec.constrains_j
                    else [j for j in range(nj) if j != k]
                )
            else:
                other_cols = range(nj)

            if row_aliased and col_aliased:
                # Stage 1: the sub-pivot. Stage 2: B row ‖ C column.
                # Stage 3: the trailing D sub-grid (paper Fig. 4, A_GE).
                call("A", k, k)
                self._par(
                    [("B", k, j) for j in other_cols]
                    + [("C", i, k) for i in other_rows],
                    call,
                    stats,
                )
                self._par(
                    [("D", i, j) for i in other_rows for j in other_cols],
                    call,
                    stats,
                )
            elif row_aliased:
                # Paper Fig. 4, B_GE: all columns get B at the sub-pivot
                # row, then D below (Σ_G rows) across all columns.
                self._par([("B", k, j) for j in range(nj)], call, stats)
                self._par(
                    [("D", i, j) for i in other_rows for j in range(nj)],
                    call,
                    stats,
                )
            elif col_aliased:
                # Paper Fig. 4, C_GE: mirror image of B_GE.
                self._par([("C", i, k) for i in range(ni)], call, stats)
                self._par(
                    [("D", i, j) for j in other_cols for i in range(ni)],
                    call,
                    stats,
                )
            else:
                # Paper Fig. 4, D_GE: one fully parallel stage per k.
                self._par(
                    [("D", i, j) for i in range(ni) for j in range(nj)],
                    call,
                    stats,
                )

    # ------------------------------------------------------------------
    def _par(self, items, call, stats) -> None:
        """Issue one stage of independent sub-calls to the OpenMP runtime."""
        if not items:
            return
        if stats is not None:
            stats.record_parallel_for(len(items))
        self.runtime.parallel_for(
            [(lambda it=item: call(*it)) for item in items]
        )

    def describe(self) -> dict:
        """Kernel metadata recorded into execution traces."""
        return {
            "kind": self.kind,
            "r_shared": self.r_shared,
            "base_size": self.base_size,
            "omp_threads": self.runtime.num_threads,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecursiveKernel(spec={self.spec.name!r}, r_shared={self.r_shared}, "
            f"base_size={self.base_size}, threads={self.runtime.num_threads})"
        )
