"""Tile kernels: iterative (loop-based) and parametric r-way recursive
divide-&-conquer, plus the simulated OpenMP runtime and the ideal-cache
miss simulator that quantifies their locality difference."""

from .cache_model import (
    CacheReport,
    LRUCache,
    iterative_gep_misses,
    recursive_gep_misses,
)
from .iterative import IterativeKernel, gep_tile_update, gep_tile_update_loop
from .openmp import OmpRuntime, SerialRuntime
from .recursive import CASE_FLAGS, RecursiveKernel, case_of
from .stats import KernelInvocation, KernelStats, LockingKernelStats

__all__ = [
    "IterativeKernel",
    "RecursiveKernel",
    "gep_tile_update",
    "gep_tile_update_loop",
    "OmpRuntime",
    "SerialRuntime",
    "KernelStats",
    "KernelInvocation",
    "LockingKernelStats",
    "CASE_FLAGS",
    "case_of",
    "LRUCache",
    "CacheReport",
    "iterative_gep_misses",
    "recursive_gep_misses",
]
