"""A simulated OpenMP runtime for the recursive kernels.

The paper offloads its recursive r-way R-DP kernels to C/OpenMP inside
each Spark executor and tunes ``OMP_NUM_THREADS``.  Offline we cannot
ship a C extension, so :class:`OmpRuntime` reproduces the *execution
structure*: ``parallel_for`` runs a batch of independent tasks either
serially or on a thread pool (NumPy releases the GIL for array ops, so
threads provide genuine overlap for large tiles), and the runtime keeps
the work/span accounting the cost model needs to model thread-count
scaling and oversubscription.

The runtime is re-entrant: nested ``parallel_for`` calls from recursive
kernels run their tasks inline on the calling thread (matching OpenMP's
default non-nested behaviour) rather than deadlocking the pool.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

from .stats import KernelStats

__all__ = ["OmpRuntime", "SerialRuntime"]


class OmpRuntime:
    """Shared-memory parallel-for runtime with OMP_NUM_THREADS semantics.

    Parameters
    ----------
    num_threads:
        The simulated ``OMP_NUM_THREADS``.  ``1`` executes serially with
        zero threading overhead.
    stats:
        Optional :class:`KernelStats` sink recording stage widths.
    """

    def __init__(self, num_threads: int = 1, stats: KernelStats | None = None) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.stats = stats
        self._pool: ThreadPoolExecutor | None = None
        self._in_parallel = threading.local()

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="omp"
            )
        return self._pool

    def _nested(self) -> bool:
        return getattr(self._in_parallel, "active", False)

    # ------------------------------------------------------------------
    def parallel_for(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute independent thunks, waiting for all (an OpenMP barrier).

        Tasks must not share mutable state except through disjoint array
        regions — exactly the contract of the paper's ``par_for`` loops.
        """
        tasks = list(tasks)
        if self.stats is not None:
            self.stats.record_parallel_for(len(tasks))
        if not tasks:
            return
        if self.num_threads == 1 or len(tasks) == 1 or self._nested():
            for task in tasks:
                task()
            return
        pool = self._ensure_pool()
        self._in_parallel.active = True
        try:
            futures = [pool.submit(self._run_task, t) for t in tasks]
            # Surface the first failure, but always drain the barrier.
            errors = []
            for fut in futures:
                try:
                    fut.result()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
            if errors:
                raise errors[0]
        finally:
            self._in_parallel.active = False

    def _run_task(self, task: Callable[[], None]) -> None:
        # Mark pool threads as inside a parallel region so nested
        # parallel_for calls from recursive kernels serialize inline.
        self._in_parallel.active = True
        task()

    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Iterable) -> None:
        """Convenience: ``parallel_for`` over ``fn(item)`` thunks."""
        self.parallel_for([(lambda it=item: fn(it)) for item in items])

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "OmpRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OmpRuntime(num_threads={self.num_threads})"


class SerialRuntime(OmpRuntime):
    """Always-serial runtime (``OMP_NUM_THREADS=1``) with no pool."""

    def __init__(self, stats: KernelStats | None = None) -> None:
        super().__init__(1, stats)
