"""The paper's primary contribution: GEP dynamic programs as tunable,
well-decomposable r-way R-DP algorithms on a Spark-like engine.

Layers (bottom up): problem specs (:mod:`~repro.core.gep`), grid-level
blocked execution (:mod:`~repro.core.blocked`), symbolic derivation of
r-way algorithms (:mod:`~repro.core.calls` / :mod:`~repro.core.
scheduling` / :mod:`~repro.core.autogen`), the distributed IM/CB drivers
(:mod:`~repro.core.dpspark`) and the public solvers
(:mod:`~repro.core.fwapsp`, :mod:`~repro.core.gaussian`,
:mod:`~repro.core.transitive`).
"""

from .api import run_gep
from .autogen import derive_by_inlining, rway_algorithm, two_way_algorithm
from .blocked import blocked_gep_inplace, updated_tiles, virtual_pad, virtual_unpad
from .dpspark import GepSparkSolver, SolveReport, make_kernel
from .fwapsp import floyd_warshall, has_negative_cycle, reconstruct_path, semiring_closure
from .gaussian import (
    PivotError,
    back_substitute,
    determinant,
    forward_eliminate,
    gaussian_solve,
    lu_decompose,
)
from .gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    GepSpec,
    SemiringGep,
    TransitiveClosureGep,
    gep_reference,
    gep_reference_vectorized,
)
from .parenthesis import (
    matrix_chain_order,
    optimal_bst_cost,
    parenthesis_solve,
    render_parenthesization,
)
from .parenthesis_spark import parenthesis_solve_spark
from .predecessors import floyd_warshall_predecessors, path_from_predecessors
from .rkleene import apsp_rkleene, rkleene_closure, transitive_closure_rkleene
from .transitive import reachable_from, strongly_connected_pairs, transitive_closure
from .tuning import TuningAdvice, adaptive_tune, tune

__all__ = [
    "GepSpec",
    "SemiringGep",
    "FloydWarshallGep",
    "GaussianEliminationGep",
    "TransitiveClosureGep",
    "gep_reference",
    "gep_reference_vectorized",
    "run_gep",
    "blocked_gep_inplace",
    "updated_tiles",
    "virtual_pad",
    "virtual_unpad",
    "rway_algorithm",
    "two_way_algorithm",
    "derive_by_inlining",
    "GepSparkSolver",
    "SolveReport",
    "make_kernel",
    "floyd_warshall",
    "semiring_closure",
    "reconstruct_path",
    "has_negative_cycle",
    "gaussian_solve",
    "forward_eliminate",
    "back_substitute",
    "lu_decompose",
    "determinant",
    "PivotError",
    "transitive_closure",
    "reachable_from",
    "strongly_connected_pairs",
    "tune",
    "adaptive_tune",
    "TuningAdvice",
    "rkleene_closure",
    "apsp_rkleene",
    "transitive_closure_rkleene",
    "floyd_warshall_predecessors",
    "path_from_predecessors",
    "parenthesis_solve",
    "parenthesis_solve_spark",
    "matrix_chain_order",
    "optimal_bst_cost",
    "render_parenthesization",
]
