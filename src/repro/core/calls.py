"""Symbolic representation of blocked-GEP function calls.

The inline-and-optimize methodology (paper §IV-A) and the polyhedral
methodology (§IV-B) both manipulate *function calls on tile regions* —
``B_GE(X_01, X_00, X_00)`` and friends — rather than data.  This module
gives those calls a concrete algebra:

* :class:`Region` — a square block of the abstract DP table, in units of
  the finest grid under consideration;
* :class:`Call` — one kernel invocation ``case(X, U, V, W)`` with its
  write region and read regions (from which *flexibility*, the paper's
  ``W(F) ∉ R(F)``, is derived);
* :func:`expand_call` — the generic r-way body of a call: the same
  case-dispatch rules the executable :class:`~repro.kernels.recursive.
  RecursiveKernel` uses, but producing symbolic sub-calls.  Inlining a
  2-way algorithm by one level (§IV-A step 1) is ``expand_call(c, 2)``.

The scheduler (:mod:`repro.core.scheduling`) then reorders flat call
lists into minimal parallel stages using the paper's four dependency
rules — reproducing Fig. 3's refinement and Fig. 4's program shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gep import GepSpec

__all__ = ["Region", "Call", "expand_call", "top_call", "render_program"]


@dataclass(frozen=True, order=True)
class Region:
    """A square tile ``[i0, i0+size) x [j0, j0+size)`` of the DP table.

    Coordinates are in units of the finest grid currently materialized,
    so regions from different refinement levels compare correctly.
    """

    i0: int
    j0: int
    size: int

    def sub(self, bi: list[int], bj: list[int], i: int, j: int) -> "Region":
        """Sub-region at grid cell (i, j) of the given boundary lists."""
        size = bi[i + 1] - bi[i]
        if size != bj[j + 1] - bj[j]:
            raise ValueError("symbolic calls require square sub-regions")
        return Region(self.i0 + bi[i], self.j0 + bj[j], size)

    def overlaps(self, other: "Region") -> bool:
        return (
            self.i0 < other.i0 + other.size
            and other.i0 < self.i0 + self.size
            and self.j0 < other.j0 + other.size
            and other.j0 < self.j0 + self.size
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.i0}:{self.i0 + self.size}, {self.j0}:{self.j0 + self.size}]"


@dataclass(frozen=True)
class Call:
    """One symbolic kernel invocation ``case(X; U, V, W)``.

    ``writes`` is X's region; ``reads`` are the distinct argument regions
    (including X itself — the GEP ``f`` always reads ``c[i,j]``).
    """

    case: str
    x: Region
    u: Region
    v: Region
    w: Region

    @property
    def writes(self) -> Region:
        return self.x

    @property
    def reads(self) -> frozenset[Region]:
        return frozenset((self.x, self.u, self.v, self.w))

    @property
    def flexible(self) -> bool:
        """The paper's flexibility: W(F) not among the *other* operands.

        The in-place fold always reads its own output tile, so the
        meaningful test is whether any of U/V/W aliases X.  Kernel D is
        flexible; A, B and C are not.
        """
        return self.x not in (self.u, self.v, self.w)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.case}(X={self.x}, U={self.u}, V={self.v}, W={self.w})"


def top_call(size: int) -> Call:
    """The root invocation ``A(X, X, X, X)`` over the whole table."""
    whole = Region(0, 0, size)
    return Call("A", whole, whole, whole, whole)


def _uniform_splits(size: int, r: int) -> list[int]:
    if size % r:
        raise ValueError(
            f"symbolic expansion needs r | size (got size={size}, r={r}); "
            "pick a power-of-two abstract size"
        )
    step = size // r
    return [t * step for t in range(r + 1)]


def expand_call(spec: GepSpec, call: Call, r: int) -> list[Call]:
    """One level of r-way expansion of ``call`` — §IV-A step 1 (inline).

    Returns the sub-calls in the naive sequential order implied by the
    recursion (sub-iteration by sub-iteration, A then B/C then D); the
    scheduler is responsible for compressing them into parallel stages
    (§IV-A step 2).
    """
    from ..kernels.recursive import CASE_FLAGS, case_of

    row_aliased, col_aliased = CASE_FLAGS[call.case]
    b = _uniform_splits(call.x.size, r)
    out: list[Call] = []

    def sub(region: Region, i: int, j: int) -> Region:
        return region.sub(b, b, i, j)

    for k in range(r):
        def mk(i: int, j: int) -> Call:
            sub_row = row_aliased and i == k
            sub_col = col_aliased and j == k
            u = sub(call.x if col_aliased else call.u, i, k)
            v = sub(call.x if row_aliased else call.v, k, j)
            w = (
                sub(call.x, k, k)
                if row_aliased and col_aliased
                else sub(call.w, k, k)
            )
            return Call(case_of(sub_row, sub_col), sub(call.x, i, j), u, v, w)

        if row_aliased:
            rows = (
                list(range(k + 1, r))
                if spec.constrains_i
                else [i for i in range(r) if i != k]
            )
        else:
            rows = list(range(r))
        if col_aliased:
            cols = (
                list(range(k + 1, r))
                if spec.constrains_j
                else [j for j in range(r) if j != k]
            )
        else:
            cols = list(range(r))

        if row_aliased and col_aliased:
            out.append(mk(k, k))
            out.extend(mk(k, j) for j in cols)
            out.extend(mk(i, k) for i in rows)
            out.extend(mk(i, j) for i in rows for j in cols)
        elif row_aliased:
            out.extend(mk(k, j) for j in range(r))
            out.extend(mk(i, j) for i in rows for j in range(r))
        elif col_aliased:
            out.extend(mk(i, k) for i in range(r))
            out.extend(mk(i, j) for j in cols for i in range(r))
        else:
            out.extend(mk(i, j) for i in range(r) for j in range(r))
    return out


def render_program(stages: list[list[Call]]) -> str:
    """Human-readable staged program (the Fig. 3 / Fig. 4 view)."""
    lines = []
    for num, stage in enumerate(stages, start=1):
        lines.append(f"stage {num}:")
        for call in stage:
            lines.append(f"    {call}")
    return "\n".join(lines)
