"""The distributed GEP drivers: In-Memory and Collect-Broadcast.

This module is the paper's §IV-C — the top-level "Spark programs" of
Listings 1 and 2, generalized over any :class:`~repro.core.gep.GepSpec`
and either kernel family, running on the :mod:`repro.sparkle` engine.

The DP table is decomposed into an ``r x r`` grid of tiles held in a
pair RDD keyed by tile coordinate; each outer iteration ``k`` runs the
A → (B ‖ C) → D stage pattern:

* **IM (In-Memory, Listing 1)** — every kernel emits, besides its
  updated tile, the *copies* its consumers need (the pivot tile fans
  out to ``2(r-k-1) + (r-k-1)^2`` copies for GE); wide
  ``combineByKey`` transformations couple each consumer tile with its
  operands.  Entirely RDD-resident, but shuffle-heavy, and constrained
  by the shuffle staging capacity (the paper's SSD limit).
* **CB (Collect-Broadcast, Listing 2)** — pivot-generation tiles are
  ``collect()``-ed to the driver and re-distributed through shared
  persistent storage; consumer kernels read their operands from storage
  instead of the shuffle.  Trades shuffle traffic for driver/storage
  traffic.

Both produce bit-identical results to the single-node blocked executor
(and hence to the scalar reference); the integration tests pin that
down across strategies, kernels, grid shapes and partitioners — and,
via the seeded chaos harness (:mod:`repro.sparkle.chaos`), under
injected task kills, executor loss, stragglers and transient I/O
faults: every kernel works on a private copy of its tile, so retried
and speculative attempts are pure recomputations from lineage and
recovery can never corrupt the DP table.  A run's recovery cost is
surfaced on :attr:`SolveReport.recovery`.

Data plane.  Kernel invocations go through :meth:`GepSparkSolver.
_updated_tile`, which never mutates its input.  On the default thread
backend it takes the historical defensive ``tile.copy()`` (the
retry-purity contract above) — unless the tile arrives as an *owned*
:class:`~repro.sparkle.serialize.CowTile`, in which case the copy is
skipped and metered as ``copies_eliminated``.  On the process backend
(``SparkleContext(backend="processes")``) picklable kernels are
offloaded to worker processes: the tile is staged into a shared-memory
scratch segment (that staging *is* the private copy), operands already
resident in the arena (CB storage blocks, broadcast tiles, cached
partitions) travel as segment names instead of bytes, and intra-tile
aliasing (A's ``u=v=w=x``, B's ``v=x``, C's ``u=x``) is re-established
worker-side via the :data:`~repro.sparkle.backend.ALIAS_X` sentinel.
Both paths are bit-identical; the backend-parity property test pins
that down.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..kernels import IterativeKernel, LockingKernelStats, RecursiveKernel
from ..kernels.openmp import OmpRuntime
from ..sparkle import HashPartitioner, Partitioner, SparkleContext
from ..sparkle.backend import ALIAS_X
from ..sparkle.durable import SolveJournal
from ..sparkle.serialize import CowTile
from ..sparkle.errors import (
    BlockNotFoundError,
    CorruptBlockError,
    PoisonTaskError,
    ResumeMismatchError,
)
from ..sparkle.metrics import EngineMetrics
from ..sparkle.rdd import CheckpointedRDD
from ..sparkle.requests import solve_fingerprint
from .blocked import b_range, c_range, grid_bounds
from .gep import GepSpec

__all__ = ["GepSparkSolver", "SolveReport", "make_kernel"]


def make_kernel(
    spec: GepSpec,
    kind: str = "iterative",
    *,
    r_shared: int = 2,
    base_size: int = 64,
    omp_threads: int = 1,
    pure_loop: bool = False,
):
    """Build a tile kernel by name: ``"iterative"`` or ``"recursive"``.

    Mirrors the paper's four benchmark configurations: IM/CB cross
    iterative/recursive, with ``r_shared`` and ``OMP_NUM_THREADS``
    applying to the recursive family only.
    """
    if kind == "iterative":
        return IterativeKernel(spec, pure_loop=pure_loop)
    if kind == "recursive":
        runtime = OmpRuntime(omp_threads)
        return RecursiveKernel(spec, r_shared=r_shared, base_size=base_size, runtime=runtime)
    raise ValueError(f"unknown kernel kind {kind!r}")


@dataclass
class SolveReport:
    """Everything observable about one distributed solve.

    The cluster cost model consumes ``engine_metrics`` (stage/shuffle/
    collect/storage trace) together with the solve configuration to
    produce simulated cluster seconds.
    """

    spec_name: str
    strategy: str
    n: int
    r: int
    kernel: dict[str, Any]
    num_partitions: int
    engine_metrics: EngineMetrics | None = None
    kernel_stats: Any = None
    wall_seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def recovery(self) -> dict[str, Any] | None:
        """Fault-recovery counters for this run (None without an engine).

        Nonzero entries quantify how much recovery work (retries,
        lineage recomputation, speculative copies, backoff) the run
        absorbed — the overhead the paper's §V failure reports leave
        unmeasured.
        """
        if self.engine_metrics is None:
            return None
        return self.engine_metrics.recovery_summary()

    @property
    def memory(self) -> dict[str, Any] | None:
        """Memory-governor counters (spill, pressure, admission waits).

        All zeros / empty when the run was not memory-budgeted; ``None``
        without an engine.
        """
        if self.engine_metrics is None:
            return None
        return self.engine_metrics.memory_summary()

    def summary(self) -> dict[str, Any]:
        out = {
            "spec": self.spec_name,
            "strategy": self.strategy,
            "n": self.n,
            "r": self.r,
            "kernel": dict(self.kernel),
            "partitions": self.num_partitions,
            "wall_seconds": round(self.wall_seconds, 4),
        }
        if self.engine_metrics is not None:
            out.update(self.engine_metrics.summary())
        if self.kernel_stats is not None:
            out["kernel_updates"] = self.kernel_stats.updates
            out["kernel_invocations"] = self.kernel_stats.total_invocations
        if self.extras:
            out["extras"] = dict(self.extras)
        return out


class GepSparkSolver:
    """Distributed GEP solver over the sparkle engine.

    Parameters
    ----------
    spec:
        The GEP problem.
    sc:
        An active :class:`~repro.sparkle.SparkleContext`.
    r:
        Grid decomposition parameter (``r x r`` tiles).  The paper tunes
        this against block size; tiles are near-equal when ``r ∤ n``.
    kernel:
        A tile kernel from :func:`make_kernel` (or compatible).
    strategy:
        ``"im"`` (Listing 1), ``"cb"`` (Listing 2), or ``"bcast"`` — a
        design-space ablation beyond the paper: like CB, but the driver
        re-distributes pivot-generation tiles with Spark broadcast
        variables instead of shared persistent storage (charging
        ``nbytes x executors`` of network instead of storage I/O).  Not
        covered by the cluster cost model.
    num_partitions:
        RDD partition count (paper default: 2x total cores).
    partitioner:
        Partitioner instance; default hash (the paper's choice), or a
        :class:`~repro.sparkle.GridPartitioner` for the §VI ablation.
    collect_stats:
        Record kernel work counters (thread-safe, slight overhead).
    checkpoint_every:
        Truncate the DP RDD's lineage every this many iterations
        (Spark-style checkpointing) so driver DAG-walk costs stay bounded
        for large ``r``; ``None`` disables.
    resume:
        Resume a crashed solve from its write-ahead journal.  Requires a
        context constructed with ``checkpoint_dir``; the journal's
        config/input fingerprint must match this solve, otherwise
        :class:`~repro.sparkle.errors.ResumeMismatchError`.  If no
        journal (or no intact snapshot) exists the solve silently starts
        fresh, so ``--resume`` is safe as an always-on flag.
    max_iterations:
        Stop after this many completed (journaled, if durable) outer
        iterations; the partial result is flagged on
        ``report.extras["partial"]``.  Pair with ``resume`` for staged
        long solves.
    on_iteration:
        ``f(k)`` called after each completed outer iteration — progress
        reporting; for a journaled solve it runs *after* the journal
        commit for ``k``, which the crash-resume tests exploit.
    degrade_on_pressure:
        Graceful degradation under memory pressure: when the context's
        memory governor touched ``critical`` pressure since the previous
        outer-iteration boundary and the active strategy is ``im``,
        switch the remaining iterations to ``cb`` — the paper's
        recommended manual fallback
        (IM stops scaling where CB survives), automated.  IM and CB are
        bit-identical per iteration, so the degraded result is
        bit-identical too; the switch is recorded on
        ``report.extras["degraded"]`` and metered as
        ``strategy_degradations``.  No-op without a memory governor or
        for non-IM strategies.
    degrade_on_crash:
        Graceful degradation under worker-crash storms: when the
        process backend quarantines a poison task
        (:class:`~repro.sparkle.errors.PoisonTaskError` — one kernel
        call killed ``max_task_failures`` fresh workers), recompute that
        call on the driver's deterministic thread path (bit-identical
        math) and, at the next outer-iteration boundary, turn kernel
        offload off for the rest of the solve — processes→threads, the
        backend analogue of the IM→CB fallback.  Recorded on
        ``report.extras["backend_degradations"]`` and metered as
        ``backend_degradations``.  Without this flag a poison task
        aborts the solve with the typed error.  No-op on the thread
        backend.

    Durability protocol (when the context has a ``checkpoint_dir``): on
    every completed outer iteration the tile grid is snapshotted into
    the durable store (checksummed, crash-atomic), *then* a journal
    record for ``k`` is appended — the commit point — and only then does
    the solve advance.  A killed driver restarts from the last journaled
    iteration whose snapshot verifies (falling back to the previous one
    if a block is corrupt) and produces bit-identical output to an
    uninterrupted run.
    """

    def __init__(
        self,
        spec: GepSpec,
        sc: SparkleContext,
        *,
        r: int,
        kernel,
        strategy: str = "im",
        num_partitions: int | None = None,
        partitioner: Partitioner | None = None,
        collect_stats: bool = True,
        checkpoint_every: int | None = None,
        resume: bool = False,
        max_iterations: int | None = None,
        on_iteration: Callable[[int], None] | None = None,
        degrade_on_pressure: bool = False,
        degrade_on_crash: bool = False,
    ) -> None:
        if strategy not in ("im", "cb", "bcast"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if r < 1:
            raise ValueError("r must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if resume and sc.durable_store is None:
            raise ValueError(
                "resume requires a SparkleContext with a checkpoint_dir"
            )
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.degrade_on_pressure = degrade_on_pressure
        self.degrade_on_crash = degrade_on_crash
        # Set once a poison quarantine degrades the solve to the thread
        # path; offload stays off for the rest of this solver's life.
        self._offload_disabled = False
        self.max_iterations = max_iterations
        self.on_iteration = on_iteration
        self.spec = spec
        self.sc = sc
        self.r = r
        self.kernel = kernel
        self.strategy = strategy
        self.num_partitions = (
            num_partitions if num_partitions is not None else sc.default_parallelism
        )
        self.partitioner = partitioner or HashPartitioner(self.num_partitions)
        self.stats = LockingKernelStats() if collect_stats else None
        # Kernel pickle probe for process-backend offload: resolved
        # lazily on first use (False = not probed yet; None = kernel is
        # not picklable, e.g. RecursiveKernel's OmpRuntime thread-locals,
        # so tile updates stay on the driver's thread path).
        self._kernel_blob: bytes | None | bool = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def disable_offload(self) -> None:
        """Run every kernel tile update on the driver's thread path.

        The same switch the poison-quarantine degrade path throws, made
        public for the solver service's circuit breaker: with the
        breaker open, new engine passes skip the process boundary
        entirely (bit-identical math, nothing left to crash) until the
        breaker half-opens and lets a probe pass offload again.
        """
        self._offload_disabled = True

    def solve(self, table: np.ndarray) -> tuple[np.ndarray, SolveReport]:
        """Run the full GEP on ``table``; returns (result, report)."""
        import time

        if table.ndim != 2 or table.shape[0] != table.shape[1]:
            raise ValueError("GEP requires a square table")
        if getattr(self.sc, "pipeline_depth", 1) > 1:
            return self._pipelined_solve(table)
        start = time.perf_counter()
        # Tile placements are scoped to one solve: a context reused for
        # several solves must not route this grid by a previous grid's
        # homes (no cross-solve affinity leaks).
        self.sc._executors.backend.reset_affinity()
        n = table.shape[0]
        bounds = grid_bounds(n, self.r)
        nt = len(bounds) - 1
        store = self.sc.durable_store
        journal = SolveJournal(store.root) if store is not None else None
        fingerprint = (
            self._fingerprint(table, n, nt) if journal is not None else None
        )

        def active(k: int) -> bool:
            return any(
                self.spec.k_active(g, n) for g in range(bounds[k], bounds[k + 1])
            )

        dp = None
        start_k = 0
        resumed_from: int | None = None
        if journal is not None and self.resume and journal.exists:
            restored = self._resume_rdd(journal, store, fingerprint, nt)
            if restored is not None:
                dp, start_k, resumed_from = restored
        if dp is None:
            if journal is not None:
                journal.reset()
                journal.append(
                    {
                        "kind": "begin",
                        "fingerprint": fingerprint,
                        "spec": self.spec.name,
                        "strategy": self.strategy,
                        "n": n,
                        "r": self.r,
                        "nt": nt,
                    }
                )
                self.sc.metrics.journal_appends += 1
            dp = self._initial_rdd(table, bounds, nt)

        self._kept_snapshots = [resumed_from] if resumed_from is not None else []
        completed = 0
        partial = False
        mm = getattr(self.sc, "memory_manager", None)
        sup = getattr(self.sc, "supervisor", None)
        plan = self.sc.fault_plan
        active_strategy = self.strategy
        degraded_at: int | None = None
        backend_degraded_at: int | None = None
        for k in range(start_k, nt):
            if not active(k):
                continue
            if (
                self.degrade_on_crash
                and sup is not None
                and not self._offload_disabled
                and sup.degrade_pending()
            ):
                # Backend degradation at the iteration boundary: a task
                # was quarantined as poison mid-iteration (its tile
                # already recomputed on the thread path); finish the
                # solve without kernel offload — same math, same bits,
                # no process boundary left to crash.
                self._offload_disabled = True
                backend_degraded_at = k
                self.sc.metrics.backend_degradations += 1
            if mm is not None and plan is not None:
                # Chaos: a seeded mid-solve budget shrink (the cluster
                # losing memory headroom).  Driver-side and keyed only by
                # the iteration, so the decision — and every pressure
                # transition it causes — is deterministic per seed.
                factor = plan.mem_squeeze(k)
                if factor < 1.0:
                    mm.squeeze(factor)
            if (
                self.degrade_on_pressure
                and mm is not None
                and active_strategy == "im"
                and mm.critical_since_last_check()
            ):
                # Graceful degradation at the iteration boundary: finish
                # the solve Collect-Broadcast style (bit-identical, but
                # its working set lives in shared storage, which the
                # governor deliberately does not budget — paper §IV-C).
                active_strategy = "cb"
                degraded_at = k
                self.sc.metrics.strategy_degradations += 1
            if active_strategy == "im":
                dp = self._im_iteration(dp, k, bounds, nt, n)
            elif active_strategy == "cb":
                dp = self._cb_iteration(dp, k, bounds, nt, n)
            else:
                dp = self._bcast_iteration(dp, k, bounds, nt, n)
            if (
                self.checkpoint_every is not None
                and (k + 1) % self.checkpoint_every == 0
            ):
                dp = dp.checkpoint()
            if journal is not None:
                dp = self._journal_iteration(journal, store, dp, k, nt)
            elif (self.degrade_on_pressure and mm is not None) or (
                self.degrade_on_crash and sup is not None
            ):
                # The DP lineage is lazy: without the journal's
                # per-iteration snapshot job nothing executes until the
                # final collect, so the governor would never observe
                # pressure (nor the supervisor a poison quarantine) at
                # an iteration boundary.  Drain one probe job so
                # iteration k's stages run now — stage reuse keeps this
                # incremental, exactly like the journal path.
                self.sc.run_job(dp, _drain_iterator, action="pressure_probe")
            if self.on_iteration is not None:
                self.on_iteration(k)
            completed += 1
            if self.max_iterations is not None and completed >= self.max_iterations:
                partial = any(active(kk) for kk in range(k + 1, nt))
                break
        result = self._assemble(dp, bounds, n, dtype=self.spec.dtype)
        if journal is not None and not partial:
            journal.append({"kind": "done"})
            self.sc.metrics.journal_appends += 1
        report = SolveReport(
            spec_name=self.spec.name,
            strategy=self.strategy,
            n=n,
            r=self.r,
            kernel=self.kernel.describe(),
            num_partitions=self.num_partitions,
            engine_metrics=self.sc.metrics,
            kernel_stats=self.stats,
            wall_seconds=time.perf_counter() - start,
        )
        if partial:
            report.extras["partial"] = {
                "iterations_completed": completed,
                "grid_iterations": nt,
            }
        if resumed_from is not None:
            report.extras["resumed_from_iteration"] = resumed_from
        if degraded_at is not None:
            report.extras["degraded"] = {
                "from": "im",
                "to": "cb",
                "at_iteration": degraded_at,
            }
        if backend_degraded_at is not None:
            report.extras["backend_degradations"] = [
                {
                    "from": "processes",
                    "to": "threads",
                    "at_iteration": backend_degraded_at,
                    "quarantined_tasks": (
                        len(sup.quarantined()) if sup is not None else 0
                    ),
                }
            ]
        if mm is not None:
            report.extras["memory_budget"] = mm.usage()
        if self.sc.fault_plan is not None:
            report.extras["chaos"] = self.sc.fault_plan.describe()
            report.extras["faults_injected"] = self.sc.fault_plan.fired()
        return result, report

    # ------------------------------------------------------------------
    # wavefront pipeline (DESIGN.md §17): dependence-admitted iterations
    # ------------------------------------------------------------------
    def _pipelined_solve(self, table: np.ndarray) -> tuple[np.ndarray, SolveReport]:
        """Overlapped outer iterations under the derived tile relation.

        Tiles are keyed ``(level, i, j)`` in a
        :class:`~repro.sparkle.pipeline.TileTracker`, where ``level`` is
        the tile's *version*: its value after iterations ``< level``.
        Each iteration's A/B‖C/D waves are admitted per-tile the moment
        their gates settle (gates derived from
        :func:`~repro.poly.dependence.iteration_read_versions`, the same
        Bernstein machinery that schedules the barrier mode), so
        iteration ``k+1``'s pivot generation runs while ``k``'s trailing
        D wave is still in flight — bounded by ``sc.pipeline_depth``
        unsealed iterations.  The journal seals iteration ``k`` (snapshot
        blocks, then the commit record — the PR 2 protocol, on the driver
        thread, in ``k`` order) only once all of ``k``'s tiles settled,
        so resume correctness is unchanged.  Results are bit-identical to
        barrier mode: the kernels, operand versions, and retry-purity
        contract are all the same — only admission timing moves.
        """
        import time

        from ..poly.dependence import iteration_read_versions
        from ..sparkle.pipeline import TileTracker

        start = time.perf_counter()
        sc = self.sc
        depth = sc.pipeline_depth
        sc._executors.backend.reset_affinity()
        n = table.shape[0]
        bounds = grid_bounds(n, self.r)
        nt = len(bounds) - 1
        store = sc.durable_store
        journal = SolveJournal(store.root) if store is not None else None
        fingerprint = self._fingerprint(table, n, nt) if journal is not None else None
        metrics = sc.metrics
        sched = sc._scheduler

        def active(k: int) -> bool:
            return any(
                self.spec.k_active(g, n) for g in range(bounds[k], bounds[k + 1])
            )

        tiles0 = None
        start_k = 0
        resumed_from: int | None = None
        if journal is not None and self.resume and journal.exists:
            restored = self._try_resume(journal, store, fingerprint, nt)
            if restored is not None:
                tiles0, start_k, resumed_from = restored
        if tiles0 is None:
            if journal is not None:
                journal.reset()
                journal.append(
                    {
                        "kind": "begin",
                        "fingerprint": fingerprint,
                        "spec": self.spec.name,
                        "strategy": self.strategy,
                        "n": n,
                        "r": self.r,
                        "nt": nt,
                    }
                )
                metrics.journal_appends += 1
            tiles0 = [
                (
                    (i, j),
                    np.ascontiguousarray(
                        table[bounds[i] : bounds[i + 1], bounds[j] : bounds[j + 1]],
                        dtype=self.spec.dtype,
                    ),
                )
                for i in range(nt)
                for j in range(nt)
            ]

        tracker = TileTracker(memory=getattr(sc, "memory_manager", None))
        for (i, j), tile in tiles0:
            tracker.settle((start_k, i, j), tile)

        self._kept_snapshots = [resumed_from] if resumed_from is not None else []
        self._bcast_lock = threading.Lock()
        all_keys = [(i, j) for i in range(nt) for j in range(nt)]
        mm = getattr(sc, "memory_manager", None)
        sup = getattr(sc, "supervisor", None)
        plan = sc.fault_plan
        active_strategy = self.strategy
        degraded_at: int | None = None
        backend_degraded_at: int | None = None
        completed = 0
        partial = False
        submitted: list[int] = []  # active iterations in flight, unsealed
        stop_level = nt

        def seal(k: int) -> None:
            """Driver-side commit of iteration ``k`` once it fully settles."""
            nonlocal completed
            tracker.wait_all([(k + 1, i, j) for (i, j) in all_keys])
            if journal is not None:
                for (i, j) in all_keys:
                    store.put(("snap", k, i, j), tracker.get((k + 1, i, j)))
                journal.append({"kind": "iteration", "k": k})
                metrics.journal_appends += 1
                self._kept_snapshots.append(k)
                while len(self._kept_snapshots) > 2:
                    old = self._kept_snapshots.pop(0)
                    for i in range(nt):
                        for j in range(nt):
                            store.delete(("snap", old, i, j))
            if self.on_iteration is not None:
                self.on_iteration(k)
            completed += 1
            # Levels <= k can no longer be read: iteration k's tasks are
            # all done and k+1 reads versions >= k+1.  Bounds live tiles
            # to the lookahead window.
            tracker.prune_below(k + 1)

        try:
            for k in range(start_k, nt):
                if not active(k):
                    for key in all_keys:
                        tracker.forward((k,) + key, (k + 1,) + key)
                    continue
                while len(submitted) >= depth:
                    seal(submitted.pop(0))
                if (
                    self.degrade_on_crash
                    and sup is not None
                    and not self._offload_disabled
                    and sup.degrade_pending()
                ):
                    self._offload_disabled = True
                    backend_degraded_at = k
                    metrics.backend_degradations += 1
                if mm is not None and plan is not None:
                    factor = plan.mem_squeeze(k)
                    if factor < 1.0:
                        mm.squeeze(factor)
                if (
                    self.degrade_on_pressure
                    and mm is not None
                    and active_strategy == "im"
                    and mm.critical_since_last_check()
                ):
                    # Pipelined IM stages operands through the tracker,
                    # not the shuffle, so the degrade keeps its meaning
                    # as "stop coupling operands through governed pools":
                    # remaining iterations switch to CB shared storage.
                    active_strategy = "cb"
                    degraded_at = k
                    metrics.strategy_degradations += 1
                self._submit_pipelined_iteration(
                    k, bounds, nt, n, tracker, active_strategy
                )
                submitted.append(k)
                metrics.pipeline_iterations += 1
                metrics.pipeline_depth_achieved = max(
                    metrics.pipeline_depth_achieved, len(submitted)
                )
                if (
                    self.max_iterations is not None
                    and completed + len(submitted) >= self.max_iterations
                ):
                    partial = any(active(kk) for kk in range(k + 1, nt))
                    stop_level = k + 1
                    break
            while submitted:
                seal(submitted.pop(0))
            tracker.wait_all([(stop_level, i, j) for (i, j) in all_keys])
        except BaseException as exc:
            tracker.abort(exc)
            sched.pipeline_drain()
            tracker.close()
            raise
        sched.pipeline_drain()

        try:
            out = np.empty((n, n), dtype=self.spec.dtype)
            for (i, j) in all_keys:
                tile = tracker.get((stop_level, i, j))
                out[bounds[i] : bounds[i + 1], bounds[j] : bounds[j + 1]] = tile
        finally:
            # Return the final level's governor charges: result tiles are
            # never pruned, and leaking them would poison the service's
            # pressure readings for every later request on this context.
            tracker.close()
        if journal is not None and not partial:
            journal.append({"kind": "done"})
            metrics.journal_appends += 1
        report = SolveReport(
            spec_name=self.spec.name,
            strategy=self.strategy,
            n=n,
            r=self.r,
            kernel=self.kernel.describe(),
            num_partitions=self.num_partitions,
            engine_metrics=metrics,
            kernel_stats=self.stats,
            wall_seconds=time.perf_counter() - start,
        )
        report.extras["pipeline"] = {
            "depth": depth,
            "depth_achieved": metrics.pipeline_depth_achieved,
            "iterations": metrics.pipeline_iterations,
            "waves": metrics.pipeline_waves,
        }
        if partial:
            report.extras["partial"] = {
                "iterations_completed": completed,
                "grid_iterations": nt,
            }
        if resumed_from is not None:
            report.extras["resumed_from_iteration"] = resumed_from
        if degraded_at is not None:
            report.extras["degraded"] = {
                "from": "im",
                "to": "cb",
                "at_iteration": degraded_at,
            }
        if backend_degraded_at is not None:
            report.extras["backend_degradations"] = [
                {
                    "from": "processes",
                    "to": "threads",
                    "at_iteration": backend_degraded_at,
                    "quarantined_tasks": (
                        len(sup.quarantined()) if sup is not None else 0
                    ),
                }
            ]
        if mm is not None:
            report.extras["memory_budget"] = mm.usage()
        if plan is not None:
            report.extras["chaos"] = plan.describe()
            report.extras["faults_injected"] = plan.fired()
        return out, report

    def _submit_pipelined_iteration(
        self, k: int, bounds: list[int], nt: int, n: int, tracker, strategy: str
    ) -> None:
        """Register iteration ``k``'s A, B‖C, and D waves with the tracker.

        Gates come from the derived per-point read versions: a pre-read
        of tile ``t`` gates on ``(k, t)``, a post-read on ``(k+1, t)``.
        Operand *staging* differs per strategy (tracker refs for IM,
        shared storage for CB, broadcast variables for bcast) but the
        gate structure — and therefore legality — is identical, because
        staging happens in ``on_result`` before the producing tile
        settles.
        """
        from ..poly.dependence import iteration_read_versions

        sc = self.sc
        sched = sc._scheduler
        spec, part = self.spec, self.partitioner
        storage = sc.shared_storage
        bs = b_range(spec, k, nt)
        cs = c_range(spec, k, nt)
        b_keys = frozenset((k, j) for j in bs)
        c_keys = frozenset((i, k) for i in cs)
        d_keys = frozenset((i, j) for i in cs for j in bs)
        gk0 = bounds[k]
        needs_w = spec.needs_w
        versions = {
            va.point: va for va in iteration_read_versions(spec, k, nt)
        }
        trace = sc.metrics.new_job(f"pipeline_k{k}")
        batch = self._run_tile_batch
        # bcast staging boxes, filled under the lock in on_result before
        # the produced tiles settle (so gated readers always find them).
        pivot_box: dict[str, Any] = {}
        band_box: dict[tuple[int, int], Any] = {}

        def gates_for(key: tuple[int, int]) -> list[tuple[int, int, int]]:
            va = versions[(k,) + key]
            return sorted((k,) + t for t in va.pre_reads) + sorted(
                (k + 1,) + t for t in va.post_reads
            )

        def pivot_operand():
            if strategy == "im":
                return tracker.get((k + 1, k, k))
            if strategy == "cb":
                return storage.get(("pivot", k))
            return pivot_box["bc"].value

        def band_operand(key: tuple[int, int]):
            if strategy == "im":
                return tracker.get((k + 1,) + key)
            if strategy == "cb":
                return storage.get(("bc", k, key))
            return band_box[key].value

        # ---- wave 1: kernel A on the pivot tile --------------------------
        def a_body(tc):
            x_in = tracker.get((k, k, k))
            return self._updated_tile(
                "A", x_in, ALIAS_X, ALIAS_X, ALIAS_X, gk0, gk0, gk0, n
            )

        def a_result(x):
            if strategy == "cb":
                storage.put(("pivot", k), x)
            elif strategy == "bcast":
                with self._bcast_lock:
                    pivot_box["bc"] = sc.broadcast(x)
            tracker.settle((k + 1, k, k), x)

        sched.submit_wave(
            trace,
            "A",
            [(part.partition((k, k)), gates_for((k, k)), a_body, a_result)],
            tracker,
        )

        # ---- wave 2: kernels B and C, grouped by home partition ----------
        bc_groups: dict[int, list[tuple[int, int]]] = {}
        for key in [(k, j) for j in bs] + [(i, k) for i in cs]:
            bc_groups.setdefault(part.partition(key), []).append(key)

        def make_bc_task(p: int, keys: list[tuple[int, int]]):
            gates: list = []
            seen: set = set()
            for key in keys:
                for g in gates_for(key):
                    if g not in seen:
                        seen.add(g)
                        gates.append(g)

            def body(tc):
                calls = []
                for i, j in keys:
                    x_in = tracker.get((k, i, j))
                    pivot = pivot_operand()
                    if i == k:
                        calls.append(
                            ("B", x_in, pivot, ALIAS_X, pivot, gk0, bounds[j], gk0, n)
                        )
                    else:
                        calls.append(
                            ("C", x_in, ALIAS_X, pivot, pivot, bounds[i], gk0, gk0, n)
                        )
                return batch(calls)

            def on_result(outs):
                if strategy == "cb":
                    for key, x in zip(keys, outs):
                        storage.put(("bc", k, key), x)
                elif strategy == "bcast":
                    with self._bcast_lock:
                        for key, x in zip(keys, outs):
                            band_box[key] = sc.broadcast(x)
                for key, x in zip(keys, outs):
                    tracker.settle((k + 1,) + key, x)

            return (p, gates, body, on_result)

        if bc_groups:
            sched.submit_wave(
                trace,
                "BC",
                [make_bc_task(p, bc_groups[p]) for p in sorted(bc_groups)],
                tracker,
            )

        # ---- wave 3: kernels D, grouped by home partition ----------------
        d_groups: dict[int, list[tuple[int, int]]] = {}
        for i in cs:
            for j in bs:
                key = (i, j)
                d_groups.setdefault(part.partition(key), []).append(key)

        def make_d_task(p: int, keys: list[tuple[int, int]]):
            gates: list = []
            seen: set = set()
            for key in keys:
                for g in gates_for(key):
                    if g not in seen:
                        seen.add(g)
                        gates.append(g)

            def body(tc):
                calls = []
                for i, j in keys:
                    x_in = tracker.get((k, i, j))
                    u = band_operand((i, k))
                    v = band_operand((k, j))
                    w = pivot_operand() if needs_w else None
                    calls.append(("D", x_in, u, v, w, bounds[i], bounds[j], gk0, n))
                return batch(calls)

            def on_result(outs):
                for key, x in zip(keys, outs):
                    tracker.settle((k + 1,) + key, x)

            return (p, gates, body, on_result)

        if d_groups:
            sched.submit_wave(
                trace,
                "D",
                [make_d_task(p, d_groups[p]) for p in sorted(d_groups)],
                tracker,
            )

        # ---- untouched tiles forward to the next version unchanged -------
        touched = {(k, k)} | b_keys | c_keys | d_keys
        for key in [(i, j) for i in range(nt) for j in range(nt)]:
            if key not in touched:
                tracker.forward((k,) + key, (k + 1,) + key)

    # ------------------------------------------------------------------
    # durability: write-ahead journal + snapshot/restore
    # ------------------------------------------------------------------
    def _fingerprint(self, table: np.ndarray, n: int, nt: int) -> str:
        """Config/input identity a journal must match to be resumable.

        Delegates to :func:`repro.sparkle.requests.solve_fingerprint` so
        the resume journal, the service's single-flight dedup table, and
        the result cache all key on the *same* digest — see that module
        for what is (and is deliberately not) covered.
        """
        return solve_fingerprint(
            self.spec.name,
            self.spec.dtype,
            n,
            self.r,
            nt,
            self.strategy,
            self.kernel.describe(),
            table,
        )

    def _journal_iteration(self, journal, store, dp, k: int, nt: int):
        """WAL commit of completed iteration ``k``.

        Order matters: snapshot blocks land (checksummed, atomic) before
        the journal record, so the record *is* the commit point — a
        crash in between resumes from ``k - 1`` and merely leaves
        unreferenced snapshot blocks for ``fsck`` to report.  Returns
        the materialized grid as a lineage-truncated RDD (the snapshot
        is now the recovery point, Spark's reliable-checkpoint rule).
        """
        parts = self.sc.run_job(dp, list, action="snapshot")
        for items in parts:
            for (i, j), tile in items:
                store.put(("snap", k, i, j), tile)
        journal.append({"kind": "iteration", "k": k})
        self.sc.metrics.journal_appends += 1
        self._kept_snapshots.append(k)
        # Keep the last two snapshots so a corrupt block in the newest
        # one still has an intact fallback; prune anything older.
        while len(self._kept_snapshots) > 2:
            old = self._kept_snapshots.pop(0)
            for i in range(nt):
                for j in range(nt):
                    store.delete(("snap", old, i, j))
        return CheckpointedRDD(self.sc, parts, dp.partitioner)

    def _try_resume(self, journal, store, fingerprint: str, nt: int):
        """Restore ``(tiles, start_k, resumed_from)`` from the journal.

        Walks journaled iterations newest-first and restores the first
        snapshot whose blocks all pass their checksums — a corrupt or
        missing block (metered as ``corrupt_blocks_detected``) falls
        back to the previous snapshot rather than ever surfacing bad
        tiles.  Returns ``None`` (fresh start) when nothing usable
        survives.
        """
        entries = journal.truncate_to_valid()
        if not entries or entries[0].get("kind") != "begin":
            return None
        begin = entries[0]
        if begin.get("fingerprint") != fingerprint:
            raise ResumeMismatchError(
                f"journal at {journal.path} records fingerprint "
                f"{begin.get('fingerprint')!r} but this solve has "
                f"{fingerprint!r} (different input/config); refusing to resume"
            )
        metrics = self.sc.metrics
        metrics.journal_entries_replayed += len(entries)
        iterations = [e for e in entries if e.get("kind") == "iteration"]
        for entry in reversed(iterations):
            k = entry["k"]
            tiles = []
            try:
                for i in range(nt):
                    for j in range(nt):
                        tiles.append(((i, j), store.get(("snap", k, i, j))))
            except (BlockNotFoundError, CorruptBlockError):
                continue
            metrics.resumed_from_iteration = k
            return tiles, k + 1, k
        return None

    def _resume_rdd(self, journal, store, fingerprint: str, nt: int):
        """RDD-path resume: restored tiles re-parallelized (barrier mode)."""
        restored = self._try_resume(journal, store, fingerprint, nt)
        if restored is None:
            return None
        tiles, start_k, resumed_from = restored
        dp = self.sc.parallelize(tiles, self.num_partitions).partitionBy(
            partitioner=self.partitioner
        )
        return dp, start_k, resumed_from

    # ------------------------------------------------------------------
    # setup / teardown
    # ------------------------------------------------------------------
    def _initial_rdd(self, table: np.ndarray, bounds: list[int], nt: int):
        tiles = []
        for i in range(nt):
            for j in range(nt):
                tile = np.ascontiguousarray(
                    table[bounds[i] : bounds[i + 1], bounds[j] : bounds[j + 1]],
                    dtype=self.spec.dtype,
                )
                tiles.append(((i, j), tile))
        return self.sc.parallelize(tiles, self.num_partitions).partitionBy(
            partitioner=self.partitioner
        )

    def _assemble(self, dp, bounds: list[int], n: int, dtype) -> np.ndarray:
        out = np.empty((n, n), dtype=dtype)
        for (i, j), tile in dp.collect():
            out[bounds[i] : bounds[i + 1], bounds[j] : bounds[j + 1]] = tile
        return out

    # ------------------------------------------------------------------
    # kernel wrappers (closure-captured into tasks)
    # ------------------------------------------------------------------
    def _offload_blob(self) -> bytes | None:
        """Pickled kernel for worker processes (None if unpicklable)."""
        if self._kernel_blob is False:
            try:
                self._kernel_blob = pickle.dumps(self.kernel, protocol=5)
            except Exception:
                self._kernel_blob = None
        return self._kernel_blob  # type: ignore[return-value]

    def _updated_tile(self, case, tile, u, v, w, gi0, gj0, gk0, n):
        """Apply one tile kernel *without mutating* ``tile``; return the
        updated array.

        ``u``/``v``/``w`` may be the :data:`~repro.sparkle.backend.
        ALIAS_X` sentinel, meaning "this operand is the tile itself"
        (A's ``u=v=w=x``, B's ``v=x``, C's ``u=x``) — resolved against
        the private copy on the thread path, or re-established against
        the shared-memory scratch view by the worker on the process
        path.  Never mutating ``tile`` is the retry-purity contract:
        retried and speculative attempts must see pristine inputs.
        """
        backend = self.sc._executors.backend
        if backend.supports_kernel_offload and not self._offload_disabled:
            blob = self._offload_blob()
            if blob is not None:
                arr = tile.array if isinstance(tile, CowTile) else tile
                try:
                    out, stats = backend.run_kernel(
                        blob, case, arr, u, v, w, gi0, gj0, gk0, n,
                        want_stats=self.stats is not None,
                    )
                except PoisonTaskError:
                    if not self.degrade_on_crash:
                        raise
                    # Quarantined as poison: recompute this one call on
                    # the driver's thread path below (bit-identical
                    # math); the full processes→threads degradation
                    # lands at the next outer-iteration boundary.
                else:
                    if stats is not None and self.stats is not None:
                        self.stats.merge(stats)
                    return out
        return self._thread_updated_tile(case, tile, u, v, w, gi0, gj0, gk0, n)

    def _thread_updated_tile(self, case, tile, u, v, w, gi0, gj0, gk0, n):
        """The deterministic thread path: private copy, aliases resolved
        against it, kernel run in place (never mutates ``tile``)."""
        if isinstance(tile, CowTile):
            x = tile.writable(self.sc.metrics)
        else:
            x = tile.copy()
        u2 = x if u is ALIAS_X else u
        v2 = x if v is ALIAS_X else v
        w2 = x if w is ALIAS_X else w
        self.kernel.run(case, x, u2, v2, w2, gi0, gj0, gk0, n, stats=self.stats)
        return x

    def _batch_enabled(self) -> bool:
        """Whether tile updates should fuse into batched offloads."""
        backend = self.sc._executors.backend
        return (
            getattr(backend, "dispatch", "tile") == "batch"
            and backend.supports_kernel_offload
            and not self._offload_disabled
            and self._offload_blob() is not None
        )

    def _run_tile_batch(self, calls: list) -> list:
        """Update a partition's worth of tiles; returns arrays in order.

        ``calls`` entries are ``(case, tile, u, v, w, gi0, gj0, gk0,
        n)`` exactly as :meth:`_updated_tile` takes them.  Under
        ``dispatch="batch"`` the whole list goes through the backend's
        fused path (one IPC round-trip per worker); otherwise each call
        dispatches on its own.  Both produce bit-identical arrays, so
        dispatch mode can never change results — only round-trip counts.
        """
        if calls and self._batch_enabled():
            return self._updated_tiles_batch(calls)
        return [self._updated_tile(*c) for c in calls]

    def _updated_tiles_batch(self, calls: list) -> list:
        """Batched offload with per-call poison handling.

        A :class:`PoisonTaskError` names the exact quarantined call
        (the batch error-attribution contract); under
        ``degrade_on_crash`` that one call is recomputed on the thread
        path and the remainder re-batched, mirroring the per-tile
        degradation semantics call for call.
        """
        backend = self.sc._executors.backend
        blob = self._offload_blob()
        results: list = [None] * len(calls)
        pending = list(range(len(calls)))
        while pending:
            bcalls = []
            for idx in pending:
                case, tile, u, v, w, gi0, gj0, gk0, n = calls[idx]
                arr = tile.array if isinstance(tile, CowTile) else tile
                bcalls.append((case, arr, u, v, w, gi0, gj0, gk0, n))
            try:
                outs = backend.run_kernel_batch(
                    blob, bcalls, want_stats=self.stats is not None
                )
            except PoisonTaskError as exc:
                if not self.degrade_on_crash:
                    raise
                poisoned = [
                    idx
                    for idx in pending
                    if calls[idx][0] == exc.case
                    and (calls[idx][5], calls[idx][6], calls[idx][7])
                    == exc.coordinate
                ]
                if not poisoned:
                    # Attribution did not match any pending call (should
                    # not happen): fall back to per-call dispatch, which
                    # handles its own poison, rather than loop forever.
                    for idx in pending:
                        results[idx] = self._updated_tile(*calls[idx])
                    break
                for idx in poisoned:
                    results[idx] = self._thread_updated_tile(*calls[idx])
                    pending.remove(idx)
                continue
            for pos, idx in enumerate(pending):
                out, stats = outs[pos]
                if stats is not None and self.stats is not None:
                    self.stats.merge(stats)
                results[idx] = out
            break
        return results

    # ------------------------------------------------------------------
    # In-Memory strategy (Listing 1)
    # ------------------------------------------------------------------
    def _im_iteration(self, dp, k: int, bounds: list[int], nt: int, n: int):
        spec, part = self.spec, self.partitioner
        bs = b_range(spec, k, nt)
        cs = c_range(spec, k, nt)
        b_keys = frozenset((k, j) for j in bs)
        c_keys = frozenset((i, k) for i in cs)
        d_keys = frozenset((i, j) for i in cs for j in bs)
        gk0 = bounds[k]
        runner = self._updated_tile

        # ---- stage 1: kernel A on the pivot tile, with consumer copies
        needs_w = spec.needs_w

        def a_rec(kv):
            (key, tile) = kv
            x = runner("A", tile, ALIAS_X, ALIAS_X, ALIAS_X, gk0, gk0, gk0, n)
            out = [(key, ("x", x))]
            for bk_ in b_keys:
                out.append((bk_, ("uw", x)))
            for ck_ in c_keys:
                out.append((ck_, ("vw", x)))
            if needs_w:
                # Only GEPs whose f reads c[k,k] (e.g. GE) fan the pivot
                # out to every D consumer — the heavy pattern that makes
                # IM lose to CB on the GE benchmark (paper §V-C).
                for dk_ in d_keys:
                    out.append((dk_, ("w", x)))
            return out

        a_out = (
            dp.filter(lambda kv: kv[0] == (k, k))
            .flatMap(a_rec)
            .partitionBy(partitioner=part)
            .cache()
        )
        a_updated = a_out.filter(lambda kv: kv[0] == (k, k)).mapValues(lambda rv: rv[1])

        if not bs and not cs:
            untouched = dp.filter(lambda kv: kv[0] != (k, k))
            return self.sc.union([untouched, a_updated]).partitionBy(partitioner=part)

        # ---- stage 2: kernels B and C, coupled with pivot copies.
        # One map_partitions over the coupled records: the partition's B
        # and C updates fuse into a single kernel batch (one offload
        # round-trip per worker under --dispatch batch), then fan out
        # the same consumer copies flatMap(bc_rec) emitted per record.
        batch = self._run_tile_batch

        def bc_part(it, _split):
            items = list(it)
            calls = []
            for key, roles in items:
                i, j = key
                if i == k:  # B: pivot row; V aliases X
                    pivot = roles["uw"]
                    calls.append(
                        ("B", roles["x"], pivot, ALIAS_X, pivot, gk0, bounds[j], gk0, n)
                    )
                else:  # C: pivot column; U aliases X
                    pivot = roles["vw"]
                    calls.append(
                        ("C", roles["x"], ALIAS_X, pivot, pivot, bounds[i], gk0, gk0, n)
                    )
            out = []
            for (key, _roles), x in zip(items, batch(calls)):
                i, j = key
                out.append((key, ("x", x)))
                if i == k:
                    out.extend(((ii, j), ("v", x)) for ii in cs)
                else:
                    out.extend(((i, jj), ("u", x)) for jj in bs)
            return out

        bc_keys = b_keys | c_keys
        bc_in = self.sc.union(
            [
                dp.filter(lambda kv: kv[0] in bc_keys).mapValues(lambda t: ("x", t)),
                a_out.filter(lambda kv: kv[0] in bc_keys),
            ]
        )
        bc_out = (
            bc_in.combineByKey(
                _role_create, _role_merge_value, _role_merge_combiners, part
            )
            .map_partitions(bc_part)
            .partitionBy(partitioner=part)
            .cache()
        )
        bc_updated = bc_out.filter(lambda kv: kv[0] in bc_keys).mapValues(
            lambda rv: rv[1]
        )

        # ---- stage 3: kernels D, coupled with U/V/W copies — the
        # dominant wave, fused per partition exactly like stage 2.
        def d_part(it, _split):
            items = list(it)
            calls = [
                (
                    "D", roles["x"], roles["u"], roles["v"], roles.get("w"),
                    bounds[key[0]], bounds[key[1]], gk0, n,
                )
                for key, roles in items
            ]
            return [
                (key, x) for (key, _roles), x in zip(items, batch(calls))
            ]

        d_sources = [
            dp.filter(lambda kv: kv[0] in d_keys).mapValues(lambda t: ("x", t)),
            bc_out.filter(lambda kv: kv[0] in d_keys),
        ]
        if needs_w:
            d_sources.insert(1, a_out.filter(lambda kv: kv[0] in d_keys))
        d_in = self.sc.union(d_sources)
        d_updated = d_in.combineByKey(
            _role_create, _role_merge_value, _role_merge_combiners, part
        ).map_partitions(d_part)

        touched = {(k, k)} | bc_keys | d_keys
        untouched = dp.filter(lambda kv: kv[0] not in touched)
        return self.sc.union(
            [untouched, a_updated, bc_updated, d_updated]
        ).partitionBy(partitioner=part)

    # ------------------------------------------------------------------
    # Collect-Broadcast strategy (Listing 2)
    # ------------------------------------------------------------------
    def _cb_iteration(self, dp, k: int, bounds: list[int], nt: int, n: int):
        spec, part, storage = self.spec, self.partitioner, self.sc.shared_storage
        bs = b_range(spec, k, nt)
        cs = c_range(spec, k, nt)
        b_keys = frozenset((k, j) for j in bs)
        c_keys = frozenset((i, k) for i in cs)
        d_keys = frozenset((i, j) for i in cs for j in bs)
        gk0 = bounds[k]
        runner = self._updated_tile

        # ---- stage 1: kernel A; collect to the driver, stage to storage
        def a_rec(tile):
            return runner("A", tile, ALIAS_X, ALIAS_X, ALIAS_X, gk0, gk0, gk0, n)

        a_block = dp.filter(lambda kv: kv[0] == (k, k)).mapValues(a_rec).cache()
        for _key, arr in a_block.collect():
            storage.put(("pivot", k), arr)

        if not bs and not cs:
            untouched = dp.filter(lambda kv: kv[0] != (k, k))
            return self.sc.union([untouched, a_block]).partitionBy(partitioner=part)

        # ---- stage 2: kernels B and C, reading the pivot from storage;
        # the partition's updates fuse into one kernel batch (the
        # storage get per record is kept so staging accounting and
        # transient-fault decisions match per-record dispatch exactly).
        batch = self._run_tile_batch

        def bc_part(it, _split):
            items = list(it)
            calls = []
            for key, tile in items:
                i, j = key
                pivot = storage.get(("pivot", k))
                if i == k:
                    calls.append(
                        ("B", tile, pivot, ALIAS_X, pivot, gk0, bounds[j], gk0, n)
                    )
                else:
                    calls.append(
                        ("C", tile, ALIAS_X, pivot, pivot, bounds[i], gk0, gk0, n)
                    )
            return [(key, x) for (key, _t), x in zip(items, batch(calls))]

        bc_keys = b_keys | c_keys
        bc_blocks = (
            dp.filter(lambda kv: kv[0] in bc_keys).map_partitions(bc_part).cache()
        )
        for key, arr in bc_blocks.collect():
            storage.put(("bc", k, key), arr)

        # ---- stage 3: kernels D, reading operands from storage (lazy)
        needs_w = spec.needs_w

        def d_part(it, _split):
            items = list(it)
            calls = []
            for key, tile in items:
                i, j = key
                u = storage.get(("bc", k, (i, k)))
                v = storage.get(("bc", k, (k, j)))
                w = storage.get(("pivot", k)) if needs_w else None
                calls.append(("D", tile, u, v, w, bounds[i], bounds[j], gk0, n))
            return [(key, x) for (key, _t), x in zip(items, batch(calls))]

        d_blocks = dp.filter(lambda kv: kv[0] in d_keys).map_partitions(d_part)

        touched = {(k, k)} | bc_keys | d_keys
        untouched = dp.filter(lambda kv: kv[0] not in touched)
        return self.sc.union(
            [untouched, a_block, bc_blocks, d_blocks]
        ).partitionBy(partitioner=part)


    # ------------------------------------------------------------------
    # Broadcast strategy (ablation): CB with broadcast variables
    # ------------------------------------------------------------------
    def _bcast_iteration(self, dp, k: int, bounds: list[int], nt: int, n: int):
        spec, part = self.spec, self.partitioner
        bs = b_range(spec, k, nt)
        cs = c_range(spec, k, nt)
        b_keys = frozenset((k, j) for j in bs)
        c_keys = frozenset((i, k) for i in cs)
        d_keys = frozenset((i, j) for i in cs for j in bs)
        gk0 = bounds[k]
        runner = self._updated_tile

        def a_rec(tile):
            return runner("A", tile, ALIAS_X, ALIAS_X, ALIAS_X, gk0, gk0, gk0, n)

        a_block = dp.filter(lambda kv: kv[0] == (k, k)).mapValues(a_rec).cache()
        collected = a_block.collect()
        pivot_bc = self.sc.broadcast(collected[0][1])

        if not bs and not cs:
            untouched = dp.filter(lambda kv: kv[0] != (k, k))
            return self.sc.union([untouched, a_block]).partitionBy(partitioner=part)

        batch = self._run_tile_batch

        def bc_part(it, _split):
            items = list(it)
            calls = []
            for key, tile in items:
                i, j = key
                pivot = pivot_bc.value
                if i == k:
                    calls.append(
                        ("B", tile, pivot, ALIAS_X, pivot, gk0, bounds[j], gk0, n)
                    )
                else:
                    calls.append(
                        ("C", tile, ALIAS_X, pivot, pivot, bounds[i], gk0, gk0, n)
                    )
            return [(key, x) for (key, _t), x in zip(items, batch(calls))]

        bc_keys = b_keys | c_keys
        bc_blocks = (
            dp.filter(lambda kv: kv[0] in bc_keys).map_partitions(bc_part).cache()
        )
        band_bc = self.sc.broadcast(dict(bc_blocks.collect()))
        needs_w = spec.needs_w

        def d_part(it, _split):
            items = list(it)
            calls = []
            for key, tile in items:
                i, j = key
                band = band_bc.value
                calls.append(
                    (
                        "D", tile, band[(i, k)], band[(k, j)],
                        pivot_bc.value if needs_w else None,
                        bounds[i], bounds[j], gk0, n,
                    )
                )
            return [(key, x) for (key, _t), x in zip(items, batch(calls))]

        d_blocks = dp.filter(lambda kv: kv[0] in d_keys).map_partitions(d_part)
        touched = {(k, k)} | bc_keys | d_keys
        untouched = dp.filter(lambda kv: kv[0] not in touched)
        return self.sc.union(
            [untouched, a_block, bc_blocks, d_blocks]
        ).partitionBy(partitioner=part)


def _drain_iterator(it) -> int:
    """Materialize a partition (the degradation path's pressure probe)."""
    n = 0
    for _ in it:
        n += 1
    return n


# ----------------------------------------------------------------------
# combineByKey role aggregation
# ----------------------------------------------------------------------
def _role_create(rv):
    role, arr = rv
    return {role: arr}


def _role_merge_value(acc, rv):
    role, arr = rv
    acc[role] = arr
    return acc


def _role_merge_combiners(a, b):
    a.update(b)
    return a
