"""Warshall's transitive closure — the third GEP instance the paper names.

Boolean-semiring GEP over an adjacency matrix: ``t[i,j] |= t[i,k] and
t[k,j]``.  Shares every execution path (local blocked, IM, CB,
iterative/recursive kernels) with the two benchmark solvers.
"""

from __future__ import annotations

import numpy as np

from .api import GepRunOptions, run_gep
from .gep import TransitiveClosureGep

__all__ = ["transitive_closure", "reachable_from", "strongly_connected_pairs"]


def _prepare_adjacency(adj: np.ndarray, reflexive: bool) -> np.ndarray:
    a = np.asarray(adj)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("adjacency matrix must be square")
    out = a.astype(bool).copy()
    if reflexive:
        np.fill_diagonal(out, True)
    return out


def transitive_closure(
    adjacency: np.ndarray,
    *,
    reflexive: bool = True,
    return_report: bool = False,
    **options,
):
    """Reachability matrix of a directed graph.

    Parameters
    ----------
    adjacency:
        (n, n) boolean (or truthy) matrix; ``adjacency[i, j]`` means an
        edge ``i → j``.
    reflexive:
        Include each vertex in its own closure (default True).
    **options:
        Engine options (see :func:`repro.core.api.run_gep`).
    """
    opts = GepRunOptions(**options)
    t = _prepare_adjacency(adjacency, reflexive)
    result, report = run_gep(TransitiveClosureGep(), t, **opts)
    if return_report:
        return result, report
    return result


def reachable_from(adjacency: np.ndarray, source: int, **options) -> np.ndarray:
    """Boolean vector of vertices reachable from ``source``."""
    closure = transitive_closure(adjacency, **options)
    if not 0 <= source < closure.shape[0]:
        raise IndexError("source out of range")
    return closure[source]


def strongly_connected_pairs(adjacency: np.ndarray, **options) -> np.ndarray:
    """Matrix of mutually-reachable pairs (``closure & closure.T``)."""
    closure = transitive_closure(adjacency, **options)
    return closure & closure.T
