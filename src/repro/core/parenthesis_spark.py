"""Distributed parenthesis DP: a wavefront driver on the sparkle engine.

This carries the paper's §VI extension the rest of the way: the
parenthesis recurrence (non-GEP — its dependencies run along interval
*lengths*, not a pivot index) mapped onto the same tile-grid / shared-
storage machinery as the Collect-Broadcast GEP driver.

The cost table's upper triangle is decomposed into an ``r x r`` tile
grid.  Tile ``(I, J)`` (rows in chunk I, columns in chunk J) depends on
its row band ``(I, K)`` and column band ``(K, J)`` for ``I <= K <= J`` —
all on *strictly smaller tile diagonals* plus shorter intervals of the
tile itself.  Tiles on one diagonal are mutually independent, so the
driver sweeps diagonals ``d = 0 .. r-1`` as parallel map stages
(the wavefront), staging finished tiles in shared storage exactly like
the CB GEP driver stages pivot blocks.

The tile kernel assembles its row/column bands and closes its cells in
increasing interval length with the same vectorized min-scan the
single-node solver uses, so the distributed result is bit-identical to
:func:`repro.core.parenthesis.parenthesis_solve` (pinned by tests).
"""

from __future__ import annotations

import numpy as np

from ..sparkle import SparkleContext
from ..util import near_equal_splits
from .parenthesis import CostFn

__all__ = ["parenthesis_solve_spark"]


def parenthesis_solve_spark(
    n: int,
    cost: CostFn,
    sc: SparkleContext,
    *,
    r: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Distributed parenthesis DP; same contract as ``parenthesis_solve``.

    Parameters
    ----------
    n, cost:
        As in :func:`repro.core.parenthesis.parenthesis_solve` (``cost``
        must be picklable-by-reference, i.e. a plain function/closure).
    sc:
        Engine context.
    r:
        Tile grid parameter (``r x r`` upper-triangular tile grid).
    """
    if n < 2:
        raise ValueError("need at least two endpoints")
    if r < 1:
        raise ValueError("r must be >= 1")
    bounds = near_equal_splits(n, r)
    nt = len(bounds) - 1
    storage = sc.shared_storage

    def tile_shape(i: int, j: int) -> tuple[int, int]:
        return bounds[i + 1] - bounds[i], bounds[j + 1] - bounds[j]

    def solve_tile(key: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Close every cell of tile ``key`` using staged smaller tiles."""
        ti, tj = key
        lo_i, hi_i = bounds[ti], bounds[ti + 1]
        lo_j, hi_j = bounds[tj], bounds[tj + 1]
        # Assemble the row band C[lo_i:hi_i, lo_i:hi_j] and the column
        # band C[lo_i:hi_j, lo_j:hi_j] from finished tiles (the current
        # tile's region stays inf and fills in as we close cells).
        span0 = lo_i
        width = hi_j - span0
        row_band = np.full((hi_i - lo_i, width), np.inf)
        col_band = np.full((width, hi_j - lo_j), np.inf)
        for tk in range(ti, tj + 1):
            if (ti, tk) != key and tk >= ti:
                block = storage.get(("ptile", ti, tk))[0]
                row_band[:, bounds[tk] - span0 : bounds[tk + 1] - span0] = block
            if (tk, tj) != key:
                block = storage.get(("ptile", tk, tj))[0]
                col_band[bounds[tk] - span0 : bounds[tk + 1] - span0, :] = block
        c_tile = np.full(tile_shape(ti, tj), np.inf)
        split_tile = np.full(tile_shape(ti, tj), -1, dtype=np.int64)

        def write(i: int, j: int, value: float, k: int) -> None:
            c_tile[i - lo_i, j - lo_j] = value
            split_tile[i - lo_i, j - lo_j] = k
            row_band[i - lo_i, j - span0] = value
            col_band[i - span0, j - lo_j] = value

        # Unit intervals cost 0 (only on diagonal tiles).
        for i in range(lo_i, hi_i):
            if lo_j <= i + 1 < hi_j:
                write(i, i + 1, 0.0, -1)
        # Close the tile's cells in increasing interval length.
        pairs = sorted(
            (
                (i, j)
                for i in range(lo_i, hi_i)
                for j in range(max(lo_j, i + 2), hi_j)
            ),
            key=lambda ij: ij[1] - ij[0],
        )
        for i, j in pairs:
            ks = np.arange(i + 1, j)
            totals = (
                row_band[i - lo_i, ks - span0]
                + col_band[ks - span0, j - lo_j]
                + cost(i, ks, j)
            )
            best = int(np.argmin(totals))
            write(i, j, float(totals[best]), int(ks[best]))
        return c_tile, split_tile

    # Wavefront over tile diagonals; tiles within one diagonal run as one
    # parallel map stage.
    for d in range(nt):
        keys = [(i, i + d) for i in range(nt - d)]
        solved = (
            sc.parallelize(keys, min(len(keys), sc.default_parallelism))
            .map(lambda key: (key, solve_tile(key)))
            .collect()
        )
        for key, payload in solved:
            storage.put(("ptile",) + key, payload)

    c = np.full((n, n), np.inf)
    split = np.full((n, n), -1, dtype=np.int64)
    for ti in range(nt):
        for tj in range(ti, nt):
            block_c, block_s = storage.get(("ptile", ti, tj))
            c[bounds[ti] : bounds[ti + 1], bounds[tj] : bounds[tj + 1]] = block_c
            split[bounds[ti] : bounds[ti + 1], bounds[tj] : bounds[tj + 1]] = block_s
    return c, split
