"""The parenthesis-problem DP family — the paper's §VI extension target.

The paper's future work proposes extending the framework "to include
other data-intensive DP algorithms (beyond GEP)", naming the parenthesis
family (matrix-chain multiplication, optimal polygon triangulation, RNA
folding, optimal BSTs — §III) as the canonical next class.  Its
recurrence is *not* a GEP update::

    C[i, j] = min_{i < k < j} ( C[i, k] + C[k, j] + w(i, k, j) )

This module implements the family generically: an iterative
length-diagonal solver, a cache-friendlier recursive divide-&-conquer
evaluation (solve halves, then close spanning intervals), split-point
extraction and two concrete instances (matrix-chain order, optimal
BST).  The tests validate both evaluation orders against brute-force
enumeration over all parenthesizations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "parenthesis_solve",
    "extract_splits",
    "matrix_chain_order",
    "optimal_bst_cost",
    "render_parenthesization",
]

#: ``w(i, ks, j) -> array`` — vectorized over the candidate splits ``ks``.
CostFn = Callable[[int, np.ndarray, int], np.ndarray]


def _close_interval(c, split, i: int, j: int, cost: CostFn) -> None:
    ks = np.arange(i + 1, j)
    totals = c[i, ks] + c[ks, j] + cost(i, ks, j)
    best = int(np.argmin(totals))
    if totals[best] < c[i, j]:
        c[i, j] = totals[best]
        split[i, j] = int(ks[best])


def parenthesis_solve(
    n: int,
    cost: CostFn,
    *,
    method: str = "iterative",
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the parenthesis DP over intervals ``0 <= i < j <= n - 1``.

    Parameters
    ----------
    n:
        Number of interval endpoints (``n - 1`` unit intervals, which
        cost 0).
    cost:
        Vectorized merge cost ``w(i, ks, j)`` where ``ks`` is the array
        of candidate split points (return a scalar or an array
        broadcastable against ``ks``).
    method:
        ``"iterative"`` (length-diagonal sweeps, the classic loop nest)
        or ``"recursive"`` (divide-&-conquer over the interval tree —
        halves first, then spanning intervals by increasing length).

    Returns
    -------
    ``(C, split)``: the cost table (upper triangle) and the optimal
    split points (``-1`` on unit intervals).
    """
    if n < 2:
        raise ValueError("need at least two endpoints")
    c = np.full((n, n), np.inf)
    split = np.full((n, n), -1, dtype=np.int64)
    for i in range(n - 1):
        c[i, i + 1] = 0.0
    if method == "iterative":
        for length in range(2, n):
            for i in range(n - length):
                _close_interval(c, split, i, i + length, cost)
    elif method == "recursive":
        _solve_rec(c, split, 0, n - 1, cost)
    else:
        raise ValueError(f"unknown method {method!r}")
    return c, split


def _solve_rec(c, split, lo: int, hi: int, cost: CostFn) -> None:
    """Divide-&-conquer evaluation: solve both halves, then close the
    spanning intervals in increasing length (a spanning interval only
    needs strictly shorter intervals, all complete by its turn)."""
    if hi - lo <= 1:
        return
    mid = (lo + hi) // 2
    _solve_rec(c, split, lo, mid, cost)
    _solve_rec(c, split, mid, hi, cost)
    spanning = sorted(
        ((i, j) for i in range(lo, mid) for j in range(mid + 1, hi + 1)),
        key=lambda ij: ij[1] - ij[0],
    )
    for i, j in spanning:
        _close_interval(c, split, i, j, cost)


def extract_splits(split: np.ndarray, i: int, j: int) -> list[tuple[int, int, int]]:
    """The optimal composition tree as ``(i, k, j)`` triples (pre-order)."""
    if j - i <= 1:
        return []
    k = int(split[i, j])
    if k < 0:
        raise ValueError(f"interval ({i}, {j}) was never composed")
    return [(i, k, j)] + extract_splits(split, i, k) + extract_splits(split, k, j)


def render_parenthesization(split: np.ndarray, i: int, j: int) -> str:
    """Human-readable bracketing, e.g. ``((A0 A1) A2)``."""
    if j - i == 1:
        return f"A{i}"
    k = int(split[i, j])
    return (
        f"({render_parenthesization(split, i, k)} "
        f"{render_parenthesization(split, k, j)})"
    )


def matrix_chain_order(
    dims: list[int] | np.ndarray, *, method: str = "iterative"
) -> tuple[float, str]:
    """Optimal matrix-chain multiplication: minimal scalar multiplications.

    ``dims`` has length ``m + 1`` for a chain of ``m`` matrices where
    matrix ``t`` is ``dims[t] x dims[t+1]``.  Returns ``(cost,
    bracketing)``.
    """
    dims = np.asarray(dims, dtype=np.float64)
    if dims.ndim != 1 or dims.size < 2:
        raise ValueError("dims must list at least two dimensions")
    if (dims <= 0).any():
        raise ValueError("dimensions must be positive")

    def cost(i: int, ks: np.ndarray, j: int) -> np.ndarray:
        return dims[i] * dims[ks] * dims[j]

    c, split = parenthesis_solve(dims.size, cost, method=method)
    n = dims.size
    return float(c[0, n - 1]), render_parenthesization(split, 0, n - 1)


def optimal_bst_cost(
    access_freq: list[float] | np.ndarray, *, method: str = "iterative"
) -> float:
    """Expected-search-cost of an optimal binary search tree.

    ``access_freq[t]`` is the access weight of key ``t``; the classic
    Knuth DP is the parenthesis recurrence with the split-independent
    merge cost ``w(i, j) = sum(freq[i:j])``.
    """
    freq = np.asarray(access_freq, dtype=np.float64)
    if freq.ndim != 1 or freq.size < 1:
        raise ValueError("need at least one key")
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    # Composition-tree view: the n + 1 dummy leaves (key gaps) are the
    # unit intervals; composing (i, k) + (k, j) roots key k - 1, and the
    # merge cost charges every key in the subtree once per level — i.e.
    # keys i .. j-2 for interval (i, j).
    n = freq.size + 2
    prefix = np.concatenate([[0.0], np.cumsum(freq)])

    def cost(i: int, ks: np.ndarray, j: int) -> float:
        return float(prefix[j - 1] - prefix[i])

    c, _split = parenthesis_solve(n, cost, method=method)
    return float(c[0, n - 1])
