"""Gaussian elimination without pivoting — the paper's second benchmark.

Forward elimination is the GEP computation of Fig. 2; this module adds
the embedding of augmented systems into square GEP tables (with inert
virtual padding), back substitution, LU extraction and solving — the
full linear-algebra workflow the paper motivates GE with.

GE without pivoting is numerically valid for diagonally dominant or
symmetric positive-definite systems (§V-A); inputs outside that class
may divide by (near-)zero pivots, which is reported, not hidden.

>>> import numpy as np
>>> from repro.core.gaussian import gaussian_solve
>>> a = np.array([[4.0, 1.0], [1.0, 3.0]])
>>> x = gaussian_solve(a, np.array([1.0, 2.0]))
>>> np.allclose(a @ x, [1.0, 2.0])
True
"""

from __future__ import annotations

import numpy as np

from .api import GepRunOptions, run_gep
from .gep import GaussianEliminationGep

__all__ = [
    "forward_eliminate",
    "gaussian_solve",
    "lu_decompose",
    "determinant",
    "PivotError",
]


class PivotError(np.linalg.LinAlgError):
    """A pivot was (near-)zero: GE without pivoting is not applicable."""


def _check_square(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    return a


def _check_pivots(u: np.ndarray, rtol: float = 1e-12) -> None:
    d = np.abs(np.diag(u))
    scale = max(np.abs(u).max(), 1.0)
    if (d < rtol * scale).any():
        bad = int(np.argmin(d))
        raise PivotError(
            f"pivot {bad} is {d[bad]:.3e} (matrix needs pivoting; GE w/o "
            "pivoting requires diagonal dominance or SPD)"
        )


def forward_eliminate(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    return_report: bool = False,
    **options,
):
    """Run GEP forward elimination on ``[A | B]``.

    Embeds the (possibly augmented) matrix into a square GEP table — the
    paper's framing of an equation system as an ``n x n`` matrix whose
    trailing column(s) hold the right-hand side(s) — and eliminates with
    pivots ``k = 0 .. n-2``.

    Returns ``(U, Y)``: the upper-triangular eliminated ``A`` (lower
    entries hold the un-normalized multiplier values GEP leaves in
    place) and the eliminated RHS block (``None`` if ``b`` was).
    """
    opts = GepRunOptions(**options)
    a = _check_square(a)
    n = a.shape[0]
    if b is not None:
        b = np.asarray(b, dtype=np.float64)
        rhs = b[:, None] if b.ndim == 1 else b
        if rhs.shape[0] != n:
            raise ValueError("rhs rows must match matrix order")
        m = rhs.shape[1]
    else:
        m = 0
    size = n + m
    table = np.zeros((size, size))
    table[:n, :n] = a
    if m:
        table[:n, n:] = rhs
    idx = np.arange(n, size)
    table[idx, idx] = 1.0
    spec = GaussianEliminationGep(n_pivots=n - 1)
    done, report = run_gep(spec, table, **opts)
    u = done[:n, :n]
    y = done[:n, n:] if m else None
    if b is not None and b.ndim == 1 and y is not None:
        y = y[:, 0]
    if return_report:
        return u, y, report
    return u, y


def back_substitute(u: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Solve ``triu(U) x = y`` (vectorized back substitution)."""
    u = _check_square(u)
    _check_pivots(u)
    n = u.shape[0]
    y = np.asarray(y, dtype=np.float64)
    x = np.array(y, copy=True)
    vec = x.ndim == 1
    if vec:
        x = x[:, None]
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= u[i, i + 1 :] @ x[i + 1 :]
        x[i] /= u[i, i]
    return x[:, 0] if vec else x


def gaussian_solve(a: np.ndarray, b: np.ndarray, **options) -> np.ndarray:
    """Solve ``A x = b`` (or ``A X = B``) via GEP forward elimination.

    Accepts the same engine options as :func:`forward_eliminate`.
    """
    u, y = forward_eliminate(a, b, **options)
    assert y is not None
    return back_substitute(np.triu(u), y)


def lu_decompose(a: np.ndarray, **options) -> tuple[np.ndarray, np.ndarray]:
    """LU decomposition (no pivoting) from the GEP-eliminated table.

    GEP leaves ``c[i, k] = l_ik * u_kk`` below the diagonal (the value
    each entry had just before its elimination step), so
    ``L = tril(C, -1) / diag(C)`` with a unit diagonal, and
    ``U = triu(C)``; ``A = L @ U``.
    """
    u_full, _ = forward_eliminate(a, None, **options)
    _check_pivots(u_full)
    u = np.triu(u_full)
    l = np.tril(u_full, -1) / np.diag(u_full)[None, :]
    np.fill_diagonal(l, 1.0)
    return l, u


def determinant(a: np.ndarray, **options) -> float:
    """Determinant via the GE pivots (``prod(diag(U))``)."""
    u_full, _ = forward_eliminate(a, None, **options)
    return float(np.prod(np.diag(u_full)))
