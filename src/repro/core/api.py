"""Shared execution plumbing for the public solvers.

Every solver (FW-APSP, GE, transitive closure, generic semiring
closure) funnels through :func:`run_gep`, which dispatches on engine:

* ``"reference"`` — per-``k`` vectorized whole-table GEP (ground truth);
* ``"local"`` — single-node blocked execution (grid of tiles, any
  kernel) — the shared-memory mirror of the distributed drivers;
* ``"spark"`` — the sparkle-based distributed drivers (IM or CB).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..kernels import KernelStats
from ..sparkle import SparkleContext
from .blocked import blocked_gep_inplace
from .dpspark import GepSparkSolver, SolveReport, make_kernel
from .gep import GepSpec, gep_reference_vectorized

__all__ = ["run_gep", "GepRunOptions"]


def run_gep(
    spec: GepSpec,
    table: np.ndarray,
    *,
    engine: str = "local",
    r: int = 8,
    kernel: str = "iterative",
    r_shared: int = 2,
    base_size: int = 64,
    omp_threads: int = 1,
    strategy: str = "im",
    sc: SparkleContext | None = None,
    num_partitions: int | None = None,
    partitioner=None,
    collect_stats: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    max_iterations: int | None = None,
    on_iteration=None,
    memory_budget_bytes: int | None = None,
    spill_dir: str | None = None,
    degrade_on_pressure: bool = False,
    backend: str = "threads",
    heartbeat_interval: float | None = None,
    task_deadline: float | None = None,
    max_task_failures: int | None = None,
    degrade_on_crash: bool = False,
    dispatch: str = "tile",
    gang_stages: bool = False,
    affinity: bool = True,
    pipeline_depth: int = 1,
) -> tuple[np.ndarray, SolveReport | None]:
    """Run one GEP computation; returns ``(result, report_or_None)``.

    ``table`` is never mutated.  See :class:`~repro.core.dpspark.
    GepSparkSolver` for the distributed-engine parameters.
    ``checkpoint_dir``/``resume``/``max_iterations``/``on_iteration``
    arm the durable write-ahead journal and crash-resume (spark engine
    only).  ``memory_budget_bytes``/``spill_dir`` attach the unified
    memory governor to an owned context (spark engine only; pass a
    pre-budgeted ``sc`` otherwise), and ``degrade_on_pressure`` arms
    the solver's IM→CB fallback under critical pressure.  ``backend``
    picks the execution data plane of an owned spark context
    (``"threads"`` default, or ``"processes"`` for multicore kernel
    offload — bit-identical results; construct ``sc`` with ``backend=``
    yourself to combine with a shared context).

    ``heartbeat_interval``/``task_deadline``/``max_task_failures``
    tune the worker supervision layer of an owned spark context (see
    :class:`~repro.sparkle.supervisor.SupervisionConfig`; pass a
    pre-configured ``sc`` otherwise), and ``degrade_on_crash`` arms the
    solver's processes→threads fallback once a kernel call is
    quarantined as poison.

    ``dispatch``/``gang_stages``/``affinity`` tune the process
    backend's kernel-offload plane of an owned spark context:
    ``dispatch="batch"`` fuses a stage's tile updates into one
    round-trip per worker, ``gang_stages=True`` spreads each batch
    across the whole worker pool as a barrier gang with all-or-nothing
    retry, and ``affinity=False`` disables tile-affinity routing.
    Pass a pre-configured ``sc`` otherwise.

    ``pipeline_depth`` (spark engine, owned context) arms wavefront
    pipelining: ``>= 2`` overlaps that many outer iterations under the
    derived tile-level dependence relation (DESIGN.md §17), with
    bit-identical results.  ``1`` keeps strict per-iteration barriers.
    """
    table = np.asarray(table)
    if engine != "spark" and (checkpoint_dir is not None or resume):
        raise ValueError("checkpoint_dir/resume require engine='spark'")
    if engine != "spark" and (
        memory_budget_bytes is not None or degrade_on_pressure
    ):
        raise ValueError(
            "memory_budget_bytes/degrade_on_pressure require engine='spark'"
        )
    if backend != "threads" and engine != "spark":
        raise ValueError("backend requires engine='spark'")
    if backend != "threads" and sc is not None:
        raise ValueError(
            "backend applies to an owned context; construct the "
            "SparkleContext with backend= instead"
        )
    if sc is not None and memory_budget_bytes is not None:
        raise ValueError(
            "memory_budget_bytes applies to an owned context; construct the "
            "SparkleContext with memory_budget_bytes instead"
        )
    supervision_kw = {
        "heartbeat_interval": heartbeat_interval,
        "task_deadline": task_deadline,
        "max_task_failures": max_task_failures,
    }
    supervision_set = {k for k, v in supervision_kw.items() if v is not None}
    if supervision_set and engine != "spark":
        names = "/".join(sorted(supervision_set))
        verb = "requires" if len(supervision_set) == 1 else "require"
        raise ValueError(f"{names} {verb} engine='spark'")
    if supervision_set and sc is not None:
        raise ValueError(
            "supervision options apply to an owned context; construct the "
            "SparkleContext with heartbeat_interval/task_deadline/"
            "max_task_failures instead"
        )
    if degrade_on_crash and engine != "spark":
        raise ValueError("degrade_on_crash requires engine='spark'")
    dispatch_kw = {
        "dispatch": dispatch != "tile",
        "gang_stages": gang_stages,
        "affinity": not affinity,
    }
    dispatch_set = {k for k, v in dispatch_kw.items() if v}
    if dispatch_set and engine != "spark":
        names = "/".join(sorted(dispatch_set))
        verb = "requires" if len(dispatch_set) == 1 else "require"
        raise ValueError(f"{names} {verb} engine='spark'")
    if dispatch_set and sc is not None:
        raise ValueError(
            "dispatch options apply to an owned context; construct the "
            "SparkleContext with dispatch/gang_stages/affinity instead"
        )
    if pipeline_depth != 1:
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if engine != "spark":
            raise ValueError("pipeline_depth requires engine='spark'")
        if sc is not None:
            raise ValueError(
                "pipeline_depth applies to an owned context; construct the "
                "SparkleContext with pipeline_depth instead"
            )
    if engine == "reference":
        return gep_reference_vectorized(spec, table), None

    if engine == "local":
        kern = make_kernel(
            spec,
            kernel,
            r_shared=r_shared,
            base_size=base_size,
            omp_threads=omp_threads,
        )
        out = np.array(table, dtype=spec.dtype, copy=True)
        stats = KernelStats() if collect_stats else None
        blocked_gep_inplace(spec, out, r, kern, stats=stats)
        report = SolveReport(
            spec_name=spec.name,
            strategy="local",
            n=table.shape[0],
            r=r,
            kernel=kern.describe(),
            num_partitions=0,
            kernel_stats=stats,
        )
        return out, report

    if engine == "spark":
        owns_ctx = sc is None
        if owns_ctx:
            ctx_kw = {k: v for k, v in supervision_kw.items() if v is not None}
            sc = SparkleContext(
                checkpoint_dir=checkpoint_dir,
                memory_budget_bytes=memory_budget_bytes,
                spill_dir=spill_dir,
                backend=backend,
                dispatch=dispatch,
                gang_stages=gang_stages,
                affinity=affinity,
                pipeline_depth=pipeline_depth,
                **ctx_kw,
            )
        elif checkpoint_dir is not None:
            sc.setCheckpointDir(checkpoint_dir)
        try:
            kern = make_kernel(
                spec,
                kernel,
                r_shared=r_shared,
                base_size=base_size,
                omp_threads=omp_threads,
            )
            solver = GepSparkSolver(
                spec,
                sc,
                r=r,
                kernel=kern,
                strategy=strategy,
                num_partitions=num_partitions,
                partitioner=partitioner,
                collect_stats=collect_stats,
                checkpoint_every=checkpoint_every,
                resume=resume,
                max_iterations=max_iterations,
                on_iteration=on_iteration,
                degrade_on_pressure=degrade_on_pressure,
                degrade_on_crash=degrade_on_crash,
            )
            return solver.solve(table)
        finally:
            if owns_ctx:
                sc.stop()

    raise ValueError(f"unknown engine {engine!r} (reference|local|spark)")


class GepRunOptions(dict):
    """Keyword bag forwarded to :func:`run_gep` by the solver wrappers."""

    KNOWN = frozenset(
        {
            "engine",
            "r",
            "kernel",
            "r_shared",
            "base_size",
            "omp_threads",
            "strategy",
            "sc",
            "num_partitions",
            "partitioner",
            "collect_stats",
            "checkpoint_every",
            "checkpoint_dir",
            "resume",
            "max_iterations",
            "on_iteration",
            "memory_budget_bytes",
            "spill_dir",
            "degrade_on_pressure",
            "backend",
            "heartbeat_interval",
            "task_deadline",
            "max_task_failures",
            "degrade_on_crash",
            "dispatch",
            "gang_stages",
            "affinity",
            "pipeline_depth",
        }
    )

    def __init__(self, **kw: Any) -> None:
        unknown = set(kw) - self.KNOWN
        if unknown:
            raise TypeError(f"unknown solver options: {sorted(unknown)}")
        super().__init__(**kw)
