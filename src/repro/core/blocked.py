"""Grid-level blocked GEP execution (the shared-memory mirror of the
Spark drivers).

The paper decomposes the DP table into an ``r x r`` grid of tiles and
runs, per outer iteration ``k``:

* stage 1 — kernel **A** on the pivot tile ``(k, k)``;
* stage 2 — kernels **B** on the pivot row and **C** on the pivot column
  (mutually independent);
* stage 3 — kernels **D** on the remaining updated tiles.

:func:`blocked_gep_inplace` executes that schedule directly on NumPy
views of one table — it is both a fast single-node GEP executor in its
own right and the ground the distributed drivers
(:mod:`repro.core.dpspark`) are validated against, since both share the
tile-range helpers defined here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..util import near_equal_splits
from .gep import GepSpec

__all__ = [
    "grid_bounds",
    "updated_tiles",
    "b_range",
    "c_range",
    "blocked_gep_inplace",
    "virtual_pad",
    "virtual_unpad",
]


def grid_bounds(n: int, r: int) -> list[int]:
    """Tile boundaries of an ``r``-way decomposition of ``[0, n)``."""
    return near_equal_splits(n, r)


def b_range(spec: GepSpec, k: int, r: int) -> list[int]:
    """Tile columns updated by kernel B at outer iteration ``k``.

    Σ_G-constrained specs (GE) only touch columns right of the pivot;
    unconstrained specs (FW-APSP) touch every non-pivot column.
    """
    if spec.constrains_j:
        return list(range(k + 1, r))
    return [j for j in range(r) if j != k]


def c_range(spec: GepSpec, k: int, r: int) -> list[int]:
    """Tile rows updated by kernel C at outer iteration ``k``."""
    if spec.constrains_i:
        return list(range(k + 1, r))
    return [i for i in range(r) if i != k]


def updated_tiles(spec: GepSpec, k: int, r: int) -> dict[str, list[tuple[int, int]]]:
    """Tiles written at outer iteration ``k``, grouped by kernel case."""
    bs = b_range(spec, k, r)
    cs = c_range(spec, k, r)
    return {
        "A": [(k, k)],
        "B": [(k, j) for j in bs],
        "C": [(i, k) for i in cs],
        "D": [(i, j) for i in cs for j in bs],
    }


def blocked_gep_inplace(
    spec: GepSpec,
    c: np.ndarray,
    r: int,
    kernel,
    stats=None,
    runtime=None,
    bounds: list[int] | None = None,
) -> np.ndarray:
    """Run the blocked A/B‖C/D schedule on table ``c`` in place.

    Parameters
    ----------
    spec, c:
        GEP problem and its square table (modified in place).
    r:
        Grid decomposition parameter (number of tile rows/columns).
    kernel:
        An :class:`~repro.kernels.iterative.IterativeKernel` or
        :class:`~repro.kernels.recursive.RecursiveKernel`.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats` sink.
    runtime:
        Optional :class:`~repro.kernels.openmp.OmpRuntime`; when given,
        stage-2 and stage-3 tile kernels of each iteration run as
        parallel-for batches (they write disjoint tiles).
    bounds:
        Explicit tile boundaries (``[0, ..., n]``, strictly increasing).
        Blocked GEP is correct for *any* contiguous partition of the
        index range — the property-based tests exercise arbitrary
        boundaries — so callers may hand-shape tiles; ``r`` is ignored
        when given.
    """
    n = c.shape[0]
    if c.shape[0] != c.shape[1]:
        raise ValueError("blocked GEP requires a square table")
    if r < 1:
        raise ValueError("r must be >= 1")
    if bounds is None:
        bounds = grid_bounds(n, r)
    else:
        bounds = list(bounds)
        if (
            bounds[0] != 0
            or bounds[-1] != n
            or any(a >= b for a, b in zip(bounds, bounds[1:]))
        ):
            raise ValueError(
                f"bounds must be strictly increasing from 0 to {n}, got {bounds}"
            )
    nt = len(bounds) - 1

    def tile(i: int, j: int) -> np.ndarray:
        return c[bounds[i] : bounds[i + 1], bounds[j] : bounds[j + 1]]

    def run_batch(calls: Sequence[tuple]) -> None:
        if runtime is None:
            for call in calls:
                kernel.run(*call, stats=stats)
        else:
            runtime.parallel_for(
                [(lambda cl=call: kernel.run(*cl, stats=stats)) for call in calls]
            )

    for k in range(nt):
        gk0 = bounds[k]
        if not any(spec.k_active(gk, n) for gk in range(gk0, bounds[k + 1])):
            continue
        pivot = tile(k, k)
        kernel.run("A", pivot, pivot, pivot, pivot, gk0, gk0, gk0, n, stats=stats)
        bc_calls = [
            ("B", tile(k, j), pivot, tile(k, j), pivot, gk0, bounds[j], gk0, n)
            for j in b_range(spec, k, nt)
        ] + [
            ("C", tile(i, k), tile(i, k), pivot, pivot, bounds[i], gk0, gk0, n)
            for i in c_range(spec, k, nt)
        ]
        run_batch(bc_calls)
        d_calls = [
            ("D", tile(i, j), tile(i, k), tile(k, j), pivot, bounds[i], bounds[j], gk0, n)
            for i in c_range(spec, k, nt)
            for j in b_range(spec, k, nt)
        ]
        run_batch(d_calls)
    return c


def virtual_pad(spec: GepSpec, table: np.ndarray, target_n: int) -> np.ndarray:
    """Embed ``table`` into a ``target_n``-sized table with inert padding.

    Implements the paper's §IV-A virtual padding: the padded cells are
    chosen (per spec) so no update involving them ever changes a cell in
    the original index range.
    """
    n = table.shape[0]
    if table.shape[0] != table.shape[1]:
        raise ValueError("virtual_pad requires a square table")
    if target_n < n:
        raise ValueError("target size smaller than table")
    if target_n == n:
        return np.array(table, dtype=spec.dtype, copy=True)
    out = np.empty((target_n, target_n), dtype=spec.dtype)
    out[:n, :n] = table
    off_diag = spec.pad_value(0, 1)
    diag = spec.pad_value(0, 0)
    out[n:, :] = off_diag
    out[:, n:] = off_diag
    idx = np.arange(n, target_n)
    out[idx, idx] = diag
    return out


def virtual_unpad(table: np.ndarray, n: int) -> np.ndarray:
    """Extract the original ``n x n`` corner of a padded table."""
    return table[:n, :n]
