"""The Gaussian Elimination Paradigm (GEP) problem specification.

A GEP computation (paper Fig. 1) processes an ``n x n`` table ``c``::

    for k in range(n):
        for i in range(n):
            for j in range(n):
                if sigma(i, j, k):
                    c[i, j] = f(c[i, j], c[i, k], c[k, j], c[k, k])

A :class:`GepSpec` bundles ``f`` and the update set ``Σ_G`` (``sigma``)
together with a *vectorized* one-``k``-step form (:meth:`GepSpec.apply_k`)
used by the tile kernels.  Vectorizing a whole ``k``-step is semantically
equal to the scalar triple loop for every spec shipped here, because at
step ``k`` the values ``c[i,k]``, ``c[k,j]`` and ``c[k,k]`` are fixed
points of that step's updates (GE never updates row/column ``k`` at step
``k`` thanks to Σ_G; for semiring folds with ``c[k,k] == one`` the updates
of row/column ``k`` are no-ops).  The property-based tests exercise this
equivalence against the honest scalar loop.

Axis constraints (:attr:`GepSpec.constrains_i` / ``constrains_j``) record
whether Σ_G restricts the updated rows/columns to ``> k``; they drive the
loop ranges of every blocked and recursive algorithm derived from the
spec (paper Fig. 4 vs. the unrestricted FW-APSP ranges).
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from ..semiring import Semiring, get_semiring

__all__ = [
    "GepSpec",
    "SemiringGep",
    "FloydWarshallGep",
    "TransitiveClosureGep",
    "GaussianEliminationGep",
    "gep_reference",
    "gep_reference_vectorized",
]


class GepSpec(abc.ABC):
    """Specification of one GEP computation: ``f``, ``Σ_G`` and metadata.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"fw-apsp"``.
    dtype:
        Table dtype.
    constrains_i / constrains_j:
        Whether Σ_G restricts the update set to ``i > k`` / ``j > k``.
        (All GEP problems in the paper constrain either both axes — GE —
        or neither — FW-APSP and transitive closure.)
    """

    name: str = "abstract-gep"
    dtype: np.dtype = np.dtype(np.float64)
    constrains_i: bool = False
    constrains_j: bool = False
    #: whether ``f`` actually reads ``c[k,k]``.  Semiring folds (FW,
    #: transitive closure) do not, so their D kernels need no pivot-tile
    #: copy — the "lighter dependencies" (paper Fig. 7) that make IM the
    #: better strategy for FW-APSP while GE favours CB.
    needs_w: bool = True
    #: relative per-cell-update cost (1.0 = FW's min/+ on doubles); used
    #: by the cluster cost model to derive kernel rates per problem
    update_weight: float = 1.0

    # ------------------------------------------------------------------
    # scalar semantics (reference / Σ_G)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def f(self, cij: Any, cik: Any, ckj: Any, ckk: Any) -> Any:
        """The scalar GEP update function."""

    def sigma(self, i: int, j: int, k: int) -> bool:
        """Membership of ``<i, j, k>`` in the update set Σ_G."""
        if self.constrains_i and not i > k:
            return False
        if self.constrains_j and not j > k:
            return False
        return True

    # ------------------------------------------------------------------
    # vectorized one-k-step semantics (tile kernels)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def apply_k(
        self,
        x: np.ndarray,
        u_col: np.ndarray,
        v_row: np.ndarray,
        w_kk: Any,
        mask: np.ndarray | None,
    ) -> None:
        """In-place update of tile ``x`` for one global ``k`` step.

        ``x[a, b] = f(x[a, b], u_col[a], v_row[b], w_kk)`` wherever
        ``mask`` is true (``mask is None`` means everywhere).  ``u_col``
        and ``v_row`` may be *views aliasing ``x``* (kernel cases A/B/C);
        implementations must therefore materialize any combination of
        ``u_col``/``v_row`` before writing into ``x``.
        """

    def sigma_mask(
        self, gi0: int, gj0: int, shape: tuple[int, int], gk: int
    ) -> np.ndarray | None:
        """Boolean Σ_G mask for a tile at global offset ``(gi0, gj0)``.

        Returns ``None`` when every cell of the tile is in Σ_G for step
        ``gk`` (the common fast path), so kernels can skip masking.
        """
        mi, mj = shape
        row_ok = (not self.constrains_i) or gi0 > gk
        col_ok = (not self.constrains_j) or gj0 > gk
        if row_ok and col_ok:
            return None
        if self.constrains_i and gi0 + mi - 1 <= gk:
            return np.zeros(shape, dtype=bool)
        if self.constrains_j and gj0 + mj - 1 <= gk:
            return np.zeros(shape, dtype=bool)
        rows = np.ones(mi, dtype=bool)
        cols = np.ones(mj, dtype=bool)
        if self.constrains_i:
            rows = (gi0 + np.arange(mi)) > gk
        if self.constrains_j:
            cols = (gj0 + np.arange(mj)) > gk
        return rows[:, None] & cols[None, :]

    def sigma_mask_free(
        self, gi0: int, gj0: int, shape: tuple[int, int], gk_lo: int, gk_hi: int
    ) -> bool:
        """True when :meth:`sigma_mask` is ``None`` for *every* ``gk`` in
        ``[gk_lo, gk_hi)`` — the tile kernels' fast-path predicate.

        The base Σ_G constraints (``i > k`` / ``j > k``) only get harder
        as ``gk`` grows (``gi0 > gk`` / ``gj0 > gk`` are antitone in
        ``gk``), so mask-freedom at the largest step implies it for the
        whole range; one check replaces a per-``kk`` probe.  Overrides
        with a non-monotone ``sigma_mask`` must override this too.
        """
        if gk_hi <= gk_lo:
            return True
        return self.sigma_mask(gi0, gj0, shape, gk_hi - 1) is None

    def k_active(self, gk: int, n: int) -> bool:
        """Whether global step ``gk`` performs any update on an n x n table.

        Specs with a restricted pivot range (e.g. GE, which only pivots
        over the coefficient columns) override this; the default runs
        every ``k``.
        """
        return 0 <= gk < n

    # ------------------------------------------------------------------
    def pad_value(self, i: int, j: int) -> Any:
        """Value for virtually-padded cell ``(i, j)`` (paper §IV-A).

        Padding must be inert: padded rows/columns may never change the
        result on the original index range.  The default (zero off the
        diagonal, one on it) is correct for semiring specs (isolated
        vertices) and is overridden where needed.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Semiring-fold GEP instances (FW-APSP, transitive closure, ...)
# ----------------------------------------------------------------------
class SemiringGep(GepSpec):
    """GEP instance ``c[i,j] = c[i,j] ⊕ (c[i,k] ⊙ c[k,j])`` over a semiring.

    Σ_G is the full index cube (no axis constraints): Floyd-Warshall,
    Warshall transitive closure and the other Aho-style path problems all
    take this shape.  ``c[k,k]`` is read but does not influence the
    update, exactly as in the paper's FW recurrence.
    """

    constrains_i = False
    constrains_j = False
    needs_w = False

    def __init__(self, semiring: Semiring | str, name: str | None = None) -> None:
        self.semiring = get_semiring(semiring)
        self.dtype = self.semiring.dtype
        # Boolean folds are byte-wide and branch-free: much cheaper.
        self.update_weight = 0.4 if self.dtype == np.bool_ else 1.0
        self.name = name or f"semiring-gep[{self.semiring.name}]"

    def f(self, cij, cik, ckj, ckk):
        sr = self.semiring
        return sr.add(np.asarray(cij), sr.mul(np.asarray(cik), np.asarray(ckj)))[()]

    def apply_k(self, x, u_col, v_row, w_kk, mask):
        sr = self.semiring
        # Materialize the ⊙-combination first: u_col/v_row may alias x.
        cand = sr.mul(u_col[:, None], v_row[None, :])
        if mask is None:
            sr.add_inplace(x, cand)
        else:
            x[mask] = sr.add(x[mask], cand[mask])

    def pad_value(self, i, j):
        return self.semiring.one if i == j else self.semiring.zero


class FloydWarshallGep(SemiringGep):
    """FW-APSP: the tropical-semiring GEP instance (paper Fig. 5)."""

    def __init__(self) -> None:
        super().__init__("tropical", name="fw-apsp")


class TransitiveClosureGep(SemiringGep):
    """Warshall's transitive closure: the boolean-semiring GEP instance."""

    def __init__(self) -> None:
        super().__init__("boolean", name="transitive-closure")


# ----------------------------------------------------------------------
# Gaussian elimination without pivoting
# ----------------------------------------------------------------------
class GaussianEliminationGep(GepSpec):
    """GE without pivoting (paper Fig. 2).

    ``f(cij, cik, ckj, ckk) = cij - cik * ckj / ckk`` with
    ``Σ_G = {<i, j, k> : i > k and j > k}`` and ``k`` restricted to the
    pivot range ``[0, n_pivots)``.

    ``n_pivots`` bounds the pivot loop: eliminating a ``p``-unknown
    system embedded in an ``n x n`` (augmented, possibly padded) table
    requires pivots ``k = 0 .. p-2`` only.  ``None`` means "all of
    ``n``", which on a square table is harmless — the trailing steps
    update empty index sets or padded cells only.
    """

    name = "gaussian-elimination"
    dtype = np.dtype(np.float64)
    constrains_i = True
    constrains_j = True
    update_weight = 1.6  # divide + multiply + subtract per cell

    def __init__(self, n_pivots: int | None = None) -> None:
        if n_pivots is not None and n_pivots < 0:
            raise ValueError("n_pivots must be non-negative")
        self.n_pivots = n_pivots

    def f(self, cij, cik, ckj, ckk):
        return cij - cik * ckj / ckk

    def apply_k(self, x, u_col, v_row, w_kk, mask):
        # np.outer materializes before the in-place subtraction, so
        # aliasing views (kernel cases A/B/C) are safe.
        update = np.outer(u_col, v_row)
        update /= w_kk
        if mask is None:
            x -= update
        else:
            x[mask] -= update[mask]

    def k_active(self, gk, n):
        hi = n if self.n_pivots is None else min(n, self.n_pivots)
        return 0 <= gk < hi

    def pad_value(self, i, j):
        """Unit diagonal, zero elsewhere: padded pivots divide by 1 and a
        zero ``c[i,k]``/``c[k,j]`` factor keeps every padded update inert."""
        return 1.0 if i == j else 0.0


# ----------------------------------------------------------------------
# Reference executors
# ----------------------------------------------------------------------
def gep_reference(spec: GepSpec, table: np.ndarray) -> np.ndarray:
    """Honest scalar triple-loop GEP (paper Fig. 1) — O(n^3) Python.

    The ground truth every kernel and every distributed execution is
    validated against.  Returns a new array.
    """
    c = np.array(table, dtype=spec.dtype, copy=True)
    n = c.shape[0]
    if c.shape[0] != c.shape[1]:
        raise ValueError("GEP reference requires a square table")
    for k in range(n):
        if not spec.k_active(k, n):
            continue
        for i in range(n):
            for j in range(n):
                if spec.sigma(i, j, k):
                    c[i, j] = spec.f(c[i, j], c[i, k], c[k, j], c[k, k])
    return c


def gep_reference_vectorized(spec: GepSpec, table: np.ndarray) -> np.ndarray:
    """Per-``k`` vectorized GEP over the whole table.

    This is the "iterative kernel offloaded to bare metal" formulation
    (the paper's Numba/NumPy path) applied unblocked; used both as a fast
    reference and as the building block of the iterative tile kernels.
    """
    c = np.array(table, dtype=spec.dtype, copy=True)
    n = c.shape[0]
    if c.shape[0] != c.shape[1]:
        raise ValueError("GEP reference requires a square table")
    for k in range(n):
        if not spec.k_active(k, n):
            continue
        mask = spec.sigma_mask(0, 0, (n, n), k)
        spec.apply_k(c, c[:, k], c[k, :], c[k, k], mask)
    return c
