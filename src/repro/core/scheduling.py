"""Stage scheduling via the paper's four dependency rules (§IV-A step 2).

Given a *sequential* list of symbolic calls (program order), the
scheduler classifies every pair by the paper's rules — for functions F1
before F2 in program order, with W(F) the written tile and R(F) the read
tiles:

1. ``W(F1) != W(F2)`` and ``W(F1) ∈ R(F2)``  →  F1 → F2 (true dataflow);
   symmetrically ``W(F2) ∈ R(F1)`` forbids hoisting F2 above F1
   (anti-dependence), also F1 → F2 in program order.
2. ``W(F1) == W(F2)`` and exactly one flexible  →  the flexible call
   runs first.  In the call lists our derivations emit, program order
   already places a tile's flexible (D) updates before its next
   inflexible (A/B/C) update, and the in-place fold makes same-tile
   pairs mutually flow-dependent through X itself, so this rule reduces
   to "keep program order".
3. ``W(F1) == W(F2)`` and both flexible  →  either order, *not in
   parallel* (↔); we keep program order.
4. otherwise  →  F1 ‖ F2.

"Moving each call to the lowest possible stage" is then an ASAP
(longest-path) level assignment over the resulting constraint graph.
Regions from different refinement levels are compared by geometric
overlap, so the scheduler works on inlined (mixed-granularity) programs
— exactly the §IV-A refinement of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .calls import Call, Region

__all__ = ["Relation", "classify_pair", "schedule_stages", "ScheduleGraph"]


class Relation:
    """Pairwise execution relation between two calls."""

    BEFORE = "before"  # F1 → F2
    AFTER = "after"  # F2 → F1
    SERIAL = "serial"  # ↔ : any order, not parallel
    PARALLEL = "parallel"  # ‖


def _reads_overlapping(call: Call, region: Region) -> bool:
    return any(region.overlaps(r) for r in call.reads)


def classify_pair(f1: Call, f2: Call) -> str:
    """Apply the four rules to calls ``f1`` (earlier) and ``f2`` (later)."""
    w1, w2 = f1.writes, f2.writes
    if not w1.overlaps(w2):
        fwd = _reads_overlapping(f2, w1)  # F2 reads what F1 writes (RAW)
        bwd = _reads_overlapping(f1, w2)  # F1 reads what F2 writes (WAR)
        if fwd or bwd:
            return Relation.BEFORE
        return Relation.PARALLEL
    # Same (or overlapping) write target.  Because the in-place GEP fold
    # always reads its own output tile, every same-tile pair is mutually
    # flow-dependent through X itself, so the later call can never be
    # hoisted above the earlier one: rule 2's "flexible first" is already
    # satisfied by the program order our derivations emit (a tile's
    # trailing flexible D updates precede its next inflexible A/B/C), and
    # rule 3's ↔ freedom degenerates to "keep program order, never
    # parallel".
    if f1.flexible and f2.flexible:
        return Relation.SERIAL
    return Relation.BEFORE


@dataclass
class ScheduleGraph:
    """Constraint graph over a call list plus its ASAP stage assignment."""

    calls: list[Call]
    edges: list[tuple[int, int]] = field(default_factory=list)
    serial_pairs: list[tuple[int, int]] = field(default_factory=list)
    stage_of: list[int] = field(default_factory=list)

    @property
    def num_stages(self) -> int:
        return (max(self.stage_of) + 1) if self.stage_of else 0

    def stages(self) -> list[list[Call]]:
        """Calls grouped by stage, preserving program order within one."""
        out: list[list[Call]] = [[] for _ in range(self.num_stages)]
        for idx, stage in enumerate(self.stage_of):
            out[stage].append(self.calls[idx])
        return out

    def critical_path(self) -> int:
        """Length (in stages) of the longest dependency chain."""
        return self.num_stages


def schedule_stages(calls: list[Call]) -> ScheduleGraph:
    """Compress a sequential call list into minimal parallel stages.

    Returns a :class:`ScheduleGraph` whose ``stage_of[i]`` is the earliest
    stage call ``i`` may run in without violating any pairwise relation.
    Serial (↔) pairs are additionally forced into distinct stages while
    retaining program order — the paper's "any order but not in
    parallel".
    """
    n = len(calls)
    edges: list[tuple[int, int]] = []
    serial: list[tuple[int, int]] = []
    for a in range(n):
        for b in range(a + 1, n):
            rel = classify_pair(calls[a], calls[b])
            if rel == Relation.BEFORE:
                edges.append((a, b))
            elif rel == Relation.AFTER:
                edges.append((b, a))
            elif rel == Relation.SERIAL:
                serial.append((a, b))
    preds: list[list[int]] = [[] for _ in range(n)]
    for src, dst in edges:
        preds[dst].append(src)
    # Serial pairs: enforce program order as an edge (cheapest legal
    # linearization; the pair may not share a stage either way).
    for a, b in serial:
        preds[b].append(a)

    stage = [0] * n
    # The graph's only back-to-front edges come from rule 2 (AFTER), and
    # they cannot form cycles with forward edges on GEP programs — but
    # guard with an iterative longest-path relaxation that detects one.
    for _ in range(n + 1):
        changed = False
        for v in range(n):
            want = max((stage[p] + 1 for p in preds[v]), default=0)
            if want > stage[v]:
                stage[v] = want
                changed = True
        if not changed:
            break
    else:
        raise ValueError("cyclic dependency constraints in call list")
    return ScheduleGraph(list(calls), edges, serial, stage)
