"""Floyd-Warshall all-pairs shortest paths — the paper's first benchmark.

Works on dense weight matrices over the tropical semiring (``+inf`` = no
edge; the diagonal is forced to the semiring one, i.e. 0).  Directed
graphs are supported natively — the paper extends Schoeneman & Zola's
undirected implementation the same way.

>>> from repro.core.fwapsp import floyd_warshall
>>> import numpy as np
>>> w = np.array([[0., 2., np.inf], [np.inf, 0., 3.], [1., np.inf, 0.]])
>>> float(floyd_warshall(w)[0, 2])
5.0
"""

from __future__ import annotations

import numpy as np

from .api import GepRunOptions, run_gep
from .gep import FloydWarshallGep, SemiringGep

__all__ = [
    "floyd_warshall",
    "semiring_closure",
    "reconstruct_path",
    "has_negative_cycle",
]


def _prepare_weights(weights: np.ndarray) -> np.ndarray:
    w = np.array(weights, dtype=np.float64, copy=True)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError("weight matrix must be square")
    np.fill_diagonal(w, np.minimum(np.diag(w), 0.0))
    return w


def floyd_warshall(weights: np.ndarray, *, return_report: bool = False, **options):
    """All-pairs shortest path distances of a directed weighted graph.

    Parameters
    ----------
    weights:
        (n, n) matrix; ``weights[i, j]`` is the length of edge ``i → j``
        (``+inf`` for no edge).  The diagonal is clamped to 0.
    return_report:
        Also return the :class:`~repro.core.dpspark.SolveReport`.
    **options:
        Engine options (see :func:`repro.core.api.run_gep`): ``engine``
        ("reference" | "local" | "spark"), ``r``, ``kernel``
        ("iterative" | "recursive"), ``r_shared``, ``base_size``,
        ``omp_threads``, ``strategy`` ("im" | "cb"), ``sc``, ...

    Returns
    -------
    (n, n) distance matrix ``d`` with ``d[i, j]`` the cost of the
    shortest ``i → j`` path (``+inf`` if unreachable).
    """
    opts = GepRunOptions(**options)
    w = _prepare_weights(weights)
    result, report = run_gep(FloydWarshallGep(), w, **opts)
    if return_report:
        return result, report
    return result


def semiring_closure(
    table: np.ndarray, semiring, *, return_report: bool = False, **options
):
    """Aho-style path-problem closure over an arbitrary closed semiring.

    Generalizes :func:`floyd_warshall` (tropical) and transitive closure
    (boolean) to any registered semiring — the GEP fold
    ``c[i,j] ⊕= c[i,k] ⊙ c[k,j]`` for all ``k``.
    """
    opts = GepRunOptions(**options)
    spec = SemiringGep(semiring)
    t = spec.semiring.asarray(np.array(table, copy=True))
    result, report = run_gep(spec, t, **opts)
    if return_report:
        return result, report
    return result


def has_negative_cycle(weights: np.ndarray, **options) -> bool:
    """Whether the graph contains a negative-weight cycle.

    Detected the classic way: a negative diagonal entry after FW.
    """
    d = floyd_warshall(weights, **options)
    return bool((np.diag(d) < 0).any())


def reconstruct_path(
    dist: np.ndarray, weights: np.ndarray, src: int, dst: int, atol: float = 1e-9
) -> list[int]:
    """One shortest path ``src → dst`` from the distance matrix.

    Walks greedily: from ``u``, follow any edge ``(u, v)`` with
    ``w[u, v] + dist[v, dst] == dist[u, dst]``.  Returns the vertex list
    (``[src]`` when ``src == dst``); raises if ``dst`` is unreachable.
    """
    w = _prepare_weights(weights)
    n = w.shape[0]
    if not (0 <= src < n and 0 <= dst < n):
        raise IndexError("vertex out of range")
    if not np.isfinite(dist[src, dst]):
        raise ValueError(f"{dst} is not reachable from {src}")
    path = [src]
    u = src
    # A finite shortest path visits at most n vertices.
    for _ in range(n + 1):
        if u == dst:
            return path
        remaining = dist[u, dst]
        candidates = np.where(
            np.isfinite(w[u]) & (np.abs(w[u] + dist[:, dst] - remaining) <= atol)
        )[0]
        candidates = [int(v) for v in candidates if v != u]
        if not candidates:
            raise ValueError("distance matrix inconsistent with weights")
        u = candidates[0]
        path.append(u)
    raise ValueError("path reconstruction did not terminate (negative cycle?)")
