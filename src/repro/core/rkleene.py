"""R-Kleene: divide-&-conquer semiring closure (paper §III, refs [48,58,59]).

Several of the GPU results the paper surveys exploit the reduction of
all-pairs shortest paths to *matrix multiplication over a closed
semiring*: D'Alberto & Nicolau's R-Kleene computes the closure
``A* = ⊕_k A^k`` of an ``n x n`` semiring matrix by two-way recursion::

    A = [[A11, A12],      A11 <- A11*
         [A21, A22]]      A12 <- A11 A12 ;  A21 <- A21 A11
                          A22 <- (A22 ⊕ A21 A12)*
                          A12 <- A12 A22 ;  A21 <- A22 A21
                          A11 <- A11 ⊕ (A12' A21')    [via the updated blocks]

This module implements it generically over :mod:`repro.semiring` as an
*alternative algorithm* for the same problems the GEP solvers compute:
over the tropical semiring with zero diagonal, ``rkleene(A) ==
floyd_warshall(A)``; over the boolean semiring it is transitive closure.
The tests pin both equivalences down — a strong independent check of the
GEP machinery, since R-Kleene shares no code path with the blocked
A/B/C/D kernels (it is built on semiring ``matmul``).

Base cases run the unblocked semiring GEP fold, and the multiply-heavy
structure is why the approach maps well to GPUs (the survey's point).
"""

from __future__ import annotations

import numpy as np

from ..semiring import Semiring, get_semiring

__all__ = ["rkleene_closure", "apsp_rkleene", "transitive_closure_rkleene"]


def _base_closure(sr: Semiring, a: np.ndarray) -> np.ndarray:
    """Closure of a small block: the scalar Floyd-Warshall-style fold
    ``a[i,j] ⊕= a[i,k] ⊙ a[k,j]`` with reflexive ``one`` on the diagonal."""
    n = a.shape[0]
    out = sr.add(a, sr.eye(n))
    for k in range(n):
        cand = sr.mul(out[:, k : k + 1], out[k : k + 1, :])
        out = sr.add(out, cand)
    return out


def rkleene_closure(
    table: np.ndarray,
    semiring: Semiring | str = "tropical",
    *,
    base_size: int = 32,
) -> np.ndarray:
    """Kleene closure ``A* = I ⊕ A ⊕ A² ⊕ ...`` by 2-way recursion.

    Parameters
    ----------
    table:
        Square semiring matrix (edge labels; ``semiring.zero`` = absent).
    semiring:
        A registered closed semiring (name or instance).  Must have a
        well-defined closure on the input (e.g. no negative cycles for
        the tropical semiring).
    base_size:
        Recursion cutoff; blocks at or below it use the iterative fold.

    Returns
    -------
    The closure matrix, with ``one`` on the diagonal (every vertex
    reaches itself with the empty path).
    """
    sr = get_semiring(semiring)
    a = sr.asarray(np.array(table, copy=True))
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("closure requires a square matrix")
    if base_size < 1:
        raise ValueError("base_size must be positive")
    _rkleene(sr, a, base_size)
    return a


def _rkleene(sr: Semiring, a: np.ndarray, base: int) -> None:
    n = a.shape[0]
    if n <= base:
        a[...] = _base_closure(sr, a)
        return
    h = n // 2
    a11 = a[:h, :h]
    a12 = a[:h, h:]
    a21 = a[h:, :h]
    a22 = a[h:, h:]

    # Paths within the first vertex half.
    _rkleene(sr, a11, base)
    # Extend across the cut: first-half detours on either end.
    a12[...] = sr.add(a12, sr.matmul(a11, a12))
    a21[...] = sr.add(a21, sr.matmul(a21, a11))
    # Second-half paths may route through the first half.
    a22[...] = sr.add(a22, sr.matmul(a21, a12))
    _rkleene(sr, a22, base)
    # Re-extend the off-diagonal blocks through second-half closures.
    a12[...] = sr.matmul(a12, a22)
    a21[...] = sr.matmul(a22, a21)
    # First-half paths that detour through the second half: the updated
    # A12/A21 already carry the A11*/A22'* factors, and A22'* embeds the
    # multi-bounce 2->1->2 paths, so one product completes the closure.
    a11[...] = sr.add(a11, sr.matmul(a12, a21))


def apsp_rkleene(weights: np.ndarray, *, base_size: int = 32) -> np.ndarray:
    """All-pairs shortest paths via R-Kleene over the tropical semiring.

    Equivalent to :func:`repro.core.fwapsp.floyd_warshall` on graphs
    without negative cycles (the diagonal is clamped to 0 first).
    """
    w = np.array(weights, dtype=np.float64, copy=True)
    np.fill_diagonal(w, np.minimum(np.diag(w), 0.0))
    return rkleene_closure(w, "tropical", base_size=base_size)


def transitive_closure_rkleene(
    adjacency: np.ndarray, *, base_size: int = 32
) -> np.ndarray:
    """Reflexive-transitive closure via R-Kleene over the boolean semiring."""
    return rkleene_closure(
        np.asarray(adjacency).astype(bool), "boolean", base_size=base_size
    )
