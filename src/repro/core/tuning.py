"""Analytical parameter tuning (paper §I, §IV-C, §VI).

The paper stresses that ``r`` (grid decomposition), ``r_shared``
(recursive fan-out), ``executor-cores`` and ``OMP_NUM_THREADS`` must be
chosen per cluster — "either on-the-fly by using adaptive runtime
configuration selection or using estimates from hardware/software
parameters based on analytical models".  This module is the analytical
route: it sweeps the configuration space through the cluster cost model
and returns the predicted-best execution plan, which Fig. 8's
portability experiment shows differs between the two testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import ClusterConfig, CostModel, ExecutionPlan
from .gep import GepSpec

__all__ = ["TuningAdvice", "tune", "candidate_blocks", "adaptive_tune"]


@dataclass
class TuningAdvice:
    """Ranked configuration recommendations for one (problem, cluster)."""

    spec_name: str
    n: int
    cluster: str
    best: tuple[int, ExecutionPlan, float]  # (r, plan, predicted seconds)
    ranking: list[tuple[int, ExecutionPlan, float]] = field(default_factory=list)

    @property
    def block(self) -> int:
        return self.n // self.best[0]

    def describe(self) -> str:
        r, plan, secs = self.best
        return (
            f"{self.spec_name} n={self.n} on {self.cluster}: "
            f"{plan.label()}, block={self.n // r} (r={r}), "
            f"executor-cores={plan.executor_cores}, "
            f"predicted {secs:.0f}s"
        )


def candidate_blocks(n: int, *, min_block: int = 128, max_r: int = 256) -> list[int]:
    """Power-of-two block sizes dividing ``n`` with a sane grid size."""
    out = []
    block = min_block
    while block <= n:
        r = n // block
        if n % block == 0 and 2 <= r <= max_r:
            out.append(block)
        block *= 2
    if not out and n >= 2:
        # fall back: split in half
        out.append(n // 2)
    return out


def tune(
    spec: GepSpec,
    n: int,
    cluster: ClusterConfig,
    *,
    strategies: tuple[str, ...] = ("im", "cb"),
    kernels: tuple[str, ...] = ("iterative", "recursive"),
    r_shared_values: tuple[int, ...] = (2, 4, 8, 16),
    omp_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    executor_cores_values: tuple[int, ...] | None = None,
    top: int = 10,
) -> TuningAdvice:
    """Predicted-best configuration for one problem on one cluster."""
    model = CostModel(cluster)
    if executor_cores_values is None:
        executor_cores_values = tuple(
            sorted({2, 4, 8, cluster.cores_per_node // 2, cluster.cores_per_node})
        )
    ranked: list[tuple[int, ExecutionPlan, float]] = []
    for block in candidate_blocks(n):
        r = n // block
        for strategy in strategies:
            if "iterative" in kernels:
                plan = ExecutionPlan(strategy, "iterative")
                ranked.append((r, plan, model.estimate(spec, n, r, plan).total))
            if "recursive" in kernels:
                for rs in r_shared_values:
                    if rs >= block:
                        continue
                    for omp in omp_values:
                        if omp > cluster.cores_per_node:
                            continue
                        for ec in executor_cores_values:
                            plan = ExecutionPlan(
                                strategy, "recursive", rs, 64, omp,
                                executor_cores=ec,
                            )
                            ranked.append(
                                (r, plan, model.estimate(spec, n, r, plan).total)
                            )
    if not ranked:
        raise ValueError(f"no feasible configuration for n={n}")
    ranked.sort(key=lambda t: t[2])
    return TuningAdvice(
        spec_name=spec.name,
        n=n,
        cluster=cluster.name,
        best=ranked[0],
        ranking=ranked[:top],
    )


def adaptive_tune(
    spec: GepSpec,
    sample_table,
    *,
    candidates: list[tuple[int, ExecutionPlan]] | None = None,
    num_executors: int = 4,
    cores_per_executor: int = 2,
    repeats: int = 1,
) -> tuple[int, ExecutionPlan, float]:
    """On-the-fly configuration selection by *measured* wall-clock.

    The paper's other tuning route ("adaptive runtime configuration
    selection", §I/§IV-C): run each candidate configuration for real on
    a representative sample problem and keep the fastest.  Complements
    :func:`tune`, which predicts instead of measuring.

    Parameters
    ----------
    spec, sample_table:
        The problem and a (small, representative) input to race on.
    candidates:
        ``(r, plan)`` pairs to try; a compact default grid otherwise.
    num_executors, cores_per_executor:
        Engine shape used for the trial runs.
    repeats:
        Measurements per candidate (minimum taken).

    Returns
    -------
    ``(r, plan, measured_seconds)`` of the fastest candidate.
    """
    import numpy as np

    from ..sparkle import SparkleContext
    from .dpspark import GepSparkSolver, make_kernel

    table = np.asarray(sample_table)
    n = table.shape[0]
    if candidates is None:
        candidates = []
        for r in (2, 4, max(2, n // 32)):
            for strategy in ("im", "cb"):
                candidates.append((r, ExecutionPlan(strategy, "iterative")))
                candidates.append(
                    (r, ExecutionPlan(strategy, "recursive", 4, 32, 2))
                )
        # Deduplicate by configuration signature (plans are unhashable).
        seen: set[tuple] = set()
        unique: list[tuple[int, ExecutionPlan]] = []
        for r, plan in candidates:
            sig = (r, plan.strategy, plan.kernel, plan.r_shared,
                   plan.base_size, plan.omp_threads, plan.executor_cores)
            if sig not in seen:
                seen.add(sig)
                unique.append((r, plan))
        candidates = unique
    best: tuple[int, ExecutionPlan, float] | None = None
    reference = None
    for r, plan in candidates:
        seconds = float("inf")
        for _ in range(max(1, repeats)):
            with SparkleContext(num_executors, cores_per_executor) as sc:
                kernel = make_kernel(
                    spec,
                    plan.kernel,
                    r_shared=plan.r_shared,
                    base_size=plan.base_size,
                    omp_threads=plan.omp_threads,
                )
                solver = GepSparkSolver(
                    spec, sc, r=r, kernel=kernel, strategy=plan.strategy,
                    collect_stats=False,
                )
                out, report = solver.solve(table)
            seconds = min(seconds, report.wall_seconds)
        if reference is None:
            reference = out
        elif not np.array_equal(
            np.asarray(out, dtype=spec.dtype),
            np.asarray(reference, dtype=spec.dtype),
        ) and not np.allclose(out, reference, equal_nan=True):
            raise AssertionError(
                f"candidate (r={r}, {plan.label()}) disagreed with the first "
                "candidate's result — refusing to tune on broken configs"
            )
        if best is None or seconds < best[2]:
            best = (r, plan, seconds)
    assert best is not None
    return best
