"""Derivation of r-way R-DP algorithms by inline-and-optimize (§IV-A).

The paper's first design methodology starts from the standard 2-way
R-DP algorithm (obtained from AutoGen/Bellmania) and repeatedly

1. **inlines** each recursive call by one level of its 2-way definition,
   producing an inefficient ``2^(t+1)``-way program, then
2. **optimizes** — moves every call to the lowest possible stage under
   the four dependency rules,

until the compact r-way pattern emerges (Fig. 3 → Fig. 4).  This module
executes both steps symbolically and exposes the derived algorithms as
staged programs.

What the tests pin down:

* inlining ``t`` times yields exactly the call multiset of the directly
  generated ``2^t``-way algorithm (the identified "compact pattern" of
  §IV-A *is* :func:`~repro.core.calls.expand_call`'s dispatch rules);
* the optimize pass strictly compresses the naive inlined sequence
  (the Fig. 3 refinement);
* for Σ_G-constrained specs (GE) the optimized schedule *equals* the
  direct r-way schedule stage for stage.

For unconstrained specs (FW-APSP) strict Bernstein analysis of the
inlined order keeps a few conservative orderings the paper's manual
pattern identification drops by exploiting semiring idempotence (a B
call may read the pivot tile either before or after that tile's
later-pivot D rewrite — both folds reach the same fixpoint).  The
executable kernels use the compact (direct) pattern, whose correctness
is established against the scalar reference in the kernel tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calls import Call, expand_call, render_program, top_call
from .gep import GepSpec
from .scheduling import ScheduleGraph, schedule_stages

__all__ = [
    "two_way_algorithm",
    "rway_algorithm",
    "inline_once",
    "derive_by_inlining",
    "DerivedAlgorithm",
]


@dataclass
class DerivedAlgorithm:
    """An r-way algorithm as a staged symbolic program."""

    spec_name: str
    r: int
    calls: list[Call]
    graph: ScheduleGraph

    @property
    def num_stages(self) -> int:
        return self.graph.num_stages

    def stages(self) -> list[list[Call]]:
        return self.graph.stages()

    def render(self) -> str:
        """The Fig. 4-style staged listing."""
        header = f"# {self.spec_name}: {self.r}-way R-DP ({self.num_stages} stages)"
        return header + "\n" + render_program(self.stages())


def rway_algorithm(spec: GepSpec, r: int, *, unit: int | None = None) -> DerivedAlgorithm:
    """Directly generate the r-way algorithm for the top-level function A.

    ``unit`` sets the abstract table size (defaults to ``r``); it must be
    divisible by ``r``.
    """
    size = unit if unit is not None else r
    calls = expand_call(spec, top_call(size), r)
    return DerivedAlgorithm(spec.name, r, calls, schedule_stages(calls))


def two_way_algorithm(spec: GepSpec, *, unit: int | None = None) -> DerivedAlgorithm:
    """The standard 2-way R-DP algorithm (the AutoGen/Bellmania output)."""
    return rway_algorithm(spec, 2, unit=unit)


def inline_once(spec: GepSpec, calls: list[Call]) -> list[Call]:
    """§IV-A step 1: inline every call by one level of its 2-way body.

    The output is the *inefficient* ``2r``-way program in naive
    sequential order; apply :func:`~repro.core.scheduling.
    schedule_stages` (step 2) to compress it.
    """
    out: list[Call] = []
    for call in calls:
        out.extend(expand_call(spec, call, 2))
    return out


def derive_by_inlining(spec: GepSpec, t: int) -> DerivedAlgorithm:
    """Derive the ``2^t``-way algorithm by t-fold inline-and-optimize.

    Starts from the top-level call on an abstract table of ``2^t`` units
    and inlines ``t`` times; the final optimize pass produces the staged
    ``2^t``-way program.  Intermediate optimize passes are unnecessary
    for correctness (stages are recomputed from scratch each time), which
    is itself a property the tests pin down.
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    size = 2**t
    calls = [top_call(size)]
    for _ in range(t):
        calls = inline_once(spec, calls)
    return DerivedAlgorithm(spec.name, size, calls, schedule_stages(calls))
