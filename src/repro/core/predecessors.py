"""Floyd-Warshall with predecessor tracking (routing-table output).

:func:`repro.core.fwapsp.reconstruct_path` recovers paths from distances
by local search; for query-heavy use (the routing/transportation
applications §V-A cites) a predecessor matrix answers every path query
in O(path length).  The tracking update rides along the standard per-k
FW step::

    better          = d[i,k] + d[k,j] < d[i,j]
    d[i,j]          = min(d[i,j], d[i,k] + d[k,j])
    pred[i,j]       = pred[k,j]      where better

``pred[i, j]`` is the vertex preceding ``j`` on a shortest ``i → j``
path (``-1`` for unreachable / ``i == j``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["floyd_warshall_predecessors", "path_from_predecessors"]


def floyd_warshall_predecessors(
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """APSP distances plus the predecessor matrix.

    Returns ``(dist, pred)``; raises on negative cycles (a predecessor
    matrix is ill-defined then).
    """
    d = np.array(weights, dtype=np.float64, copy=True)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("weight matrix must be square")
    n = d.shape[0]
    np.fill_diagonal(d, np.minimum(np.diag(d), 0.0))
    pred = np.where(
        np.isfinite(d) & ~np.eye(n, dtype=bool),
        np.arange(n)[:, None] * np.ones(n, dtype=np.int64)[None, :],
        -1,
    ).astype(np.int64)
    for k in range(n):
        with np.errstate(invalid="ignore"):
            cand = d[:, k, None] + d[None, k, :]
        cand = np.where(np.isnan(cand), np.inf, cand)
        better = cand < d
        d = np.where(better, cand, d)
        pred = np.where(better, pred[k, :][None, :], pred)
    if (np.diag(d) < 0).any():
        raise ValueError("graph contains a negative cycle")
    return d, pred


def path_from_predecessors(pred: np.ndarray, src: int, dst: int) -> list[int]:
    """Shortest path ``src → dst`` as a vertex list (``[src]`` if equal).

    Raises ``ValueError`` when ``dst`` is unreachable from ``src``.
    """
    n = pred.shape[0]
    if not (0 <= src < n and 0 <= dst < n):
        raise IndexError("vertex out of range")
    if src == dst:
        return [src]
    if pred[src, dst] < 0:
        raise ValueError(f"{dst} is not reachable from {src}")
    path = [dst]
    v = dst
    for _ in range(n):
        v = int(pred[src, v])
        path.append(v)
        if v == src:
            return path[::-1]
    raise ValueError("predecessor matrix is inconsistent")
