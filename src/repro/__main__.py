"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Run one of the DP solvers on a generated (or ``.npy``) input through
    the chosen engine and print a result summary.  With
    ``--checkpoint-dir`` the spark engine journals every completed outer
    iteration to durable storage; a killed run restarts from the last
    journaled iteration with ``--resume`` and produces bit-identical
    output.
``fsck``
    Verify the integrity of a checkpoint directory (block checksums,
    manifest consistency, journal validity) and report any damage.
``memstat``
    Print the memory-governor counters (spill volume, pressure
    transitions, admission waits, degradations) from a solve report
    JSON written with ``solve --report``.
``workers``
    Print the worker-supervision counters (crashes, respawns, missed
    heartbeats, deadlines, poison quarantines, orphan reclamations,
    backend degradations) from a solve report JSON written with
    ``solve --report``.
``tune``
    Print the analytical tuning advice for a problem on a cluster preset.
``experiments``
    Regenerate the paper's tables/figures (same as
    ``python -m repro.experiments``).
``info``
    Version, available semirings, cluster presets.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_or_generate(args) -> np.ndarray:
    if args.input:
        return np.load(args.input)
    from repro.workloads import diagonally_dominant, random_digraph_weights

    if args.problem == "ge":
        return diagonally_dominant(args.n, seed=args.seed)
    w = random_digraph_weights(args.n, args.density, seed=args.seed)
    if args.problem == "tc":
        return np.isfinite(w)
    return w


def _cmd_solve(args) -> int:
    from repro.core import floyd_warshall, forward_eliminate, transitive_closure
    from repro.sparkle import FaultPlan, ResumeMismatchError, SparkleContext

    fault_plan = None
    if args.chaos is not None:
        if args.engine != "spark":
            print("--chaos requires --engine spark", file=sys.stderr)
            return 2
        try:
            fault_plan = FaultPlan.from_string(args.chaos)
        except ValueError as exc:
            print(f"invalid --chaos spec: {exc}", file=sys.stderr)
            return 2
    if args.engine != "spark" and args.checkpoint_dir:
        print("--checkpoint-dir requires --engine spark", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.memory_budget is not None and args.engine != "spark":
        print("--memory-budget requires --engine spark", file=sys.stderr)
        return 2
    if args.backend != "threads" and args.engine != "spark":
        print("--backend requires --engine spark", file=sys.stderr)
        return 2
    if args.memory_budget is not None and args.memory_budget < 1:
        print("--memory-budget must be >= 1 byte", file=sys.stderr)
        return 2
    if args.memory_budget is None and (args.spill_dir or args.degrade_on_pressure):
        print(
            "--spill-dir/--degrade-on-pressure require --memory-budget",
            file=sys.stderr,
        )
        return 2
    supervision_flags = (
        args.heartbeat_interval is not None
        or args.task_deadline is not None
        or args.max_task_failures is not None
    )
    if supervision_flags and args.engine != "spark":
        print(
            "--heartbeat-interval/--task-deadline/--max-task-failures "
            "require --engine spark",
            file=sys.stderr,
        )
        return 2
    if args.heartbeat_interval is not None and args.heartbeat_interval < 0:
        print("--heartbeat-interval must be >= 0 (0 disables)", file=sys.stderr)
        return 2
    if args.task_deadline is not None and args.task_deadline <= 0:
        print("--task-deadline must be > 0 seconds", file=sys.stderr)
        return 2
    if args.max_task_failures is not None and args.max_task_failures < 1:
        print("--max-task-failures must be >= 1", file=sys.stderr)
        return 2
    if args.degrade_on_crash and args.backend != "processes":
        print(
            "--degrade-on-crash requires --backend processes (the threads "
            "backend has nothing to degrade to)",
            file=sys.stderr,
        )
        return 2
    if args.dispatch == "batch" and args.backend != "processes":
        print(
            "--dispatch batch requires --backend processes (the threads "
            "backend runs kernels in-process; there is nothing to batch)",
            file=sys.stderr,
        )
        return 2
    if args.gang_stages and args.dispatch != "batch":
        print("--gang-stages requires --dispatch batch", file=sys.stderr)
        return 2
    if args.affinity == "off" and args.backend != "processes":
        print("--affinity off requires --backend processes", file=sys.stderr)
        return 2
    if args.pipeline_depth < 1:
        print("--pipeline-depth must be >= 1", file=sys.stderr)
        return 2
    if args.pipeline_depth > 1 and args.engine != "spark":
        print("--pipeline-depth requires --engine spark", file=sys.stderr)
        return 2

    table = _load_or_generate(args)
    kw = dict(
        engine=args.engine,
        r=args.r,
        kernel=args.kernel,
        r_shared=args.r_shared,
        omp_threads=args.omp,
        strategy=args.strategy,
    )
    ctx_supervision_kw = {}
    if args.heartbeat_interval is not None:
        ctx_supervision_kw["heartbeat_interval"] = args.heartbeat_interval
    if args.task_deadline is not None:
        ctx_supervision_kw["task_deadline"] = args.task_deadline
    if args.max_task_failures is not None:
        ctx_supervision_kw["max_task_failures"] = args.max_task_failures
    ctx = (
        SparkleContext(
            args.executors,
            args.cores,
            fault_plan=fault_plan,
            checkpoint_dir=args.checkpoint_dir or None,
            memory_budget_bytes=args.memory_budget,
            spill_dir=args.spill_dir or None,
            backend=args.backend,
            dispatch=args.dispatch,
            gang_stages=args.gang_stages,
            affinity=args.affinity != "off",
            pipeline_depth=args.pipeline_depth,
            **ctx_supervision_kw,
        )
        if args.engine == "spark"
        else None
    )
    try:
        if ctx is not None:
            kw["sc"] = ctx
            kw["resume"] = args.resume
            kw["max_iterations"] = args.max_iterations
            kw["degrade_on_pressure"] = args.degrade_on_pressure
            kw["degrade_on_crash"] = args.degrade_on_crash
        try:
            if args.problem == "apsp":
                out, report = floyd_warshall(table, return_report=True, **kw)
            elif args.problem == "tc":
                out, report = transitive_closure(table, return_report=True, **kw)
            else:
                out, _, report = forward_eliminate(
                    table, None, return_report=True, **kw
                )
        except ResumeMismatchError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        partial = report is not None and report.extras.get("partial")
        if partial:
            print(
                f"partial solve: {partial['iterations_completed']} of "
                f"{partial['grid_iterations']} outer iterations journaled; "
                f"finish with --resume --checkpoint-dir {args.checkpoint_dir}"
            )
        elif args.problem == "apsp":
            finite = out[np.isfinite(out)]
            print(f"APSP solved: n={out.shape[0]}, diameter={finite.max():.4g}, "
                  f"mean distance={finite.mean():.4g}")
        elif args.problem == "tc":
            print(f"closure solved: n={out.shape[0]}, "
                  f"reachable pairs={int(out.sum())}")
        else:
            print(f"GE eliminated: n={out.shape[0]}, "
                  f"|det|={abs(float(np.prod(np.diag(out)))):.4g}")
        if report is not None and report.engine_metrics is not None:
            print("engine:", report.engine_metrics.summary())
            if args.checkpoint_dir:
                metrics = report.engine_metrics
                print("durability:", metrics.durability_summary())
                if report.extras.get("resumed_from_iteration") is not None:
                    print(
                        "resumed after journaled iteration "
                        f"{report.extras['resumed_from_iteration']}"
                    )
            if fault_plan is not None:
                print("chaos:", fault_plan.describe(),
                      "| injected:", fault_plan.fired())
                print("recovery:", report.engine_metrics.recovery_summary())
            if args.pipeline_depth > 1:
                print("pipeline:", report.engine_metrics.pipeline_summary())
            if args.backend == "processes":
                print("data plane:", report.engine_metrics.data_plane_summary())
                print("dispatch:", report.engine_metrics.dispatch_summary())
                print(
                    "supervision:",
                    report.engine_metrics.supervision_summary(),
                )
                for d in report.extras.get("backend_degradations") or []:
                    print(
                        f"degraded backend {d['from']}->{d['to']} at outer "
                        f"iteration {d['at_iteration']} "
                        f"({d['quarantined_tasks']} poison task(s) "
                        f"quarantined)"
                    )
            if args.memory_budget is not None:
                print("memory:", report.engine_metrics.memory_summary())
                if report.extras.get("degraded"):
                    d = report.extras["degraded"]
                    print(
                        f"degraded {d['from']}->{d['to']} at outer "
                        f"iteration {d['at_iteration']} (critical memory "
                        f"pressure)"
                    )
        if args.report and report is not None:
            import json

            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(report.summary(), fh, indent=2, default=str)
            print(f"report written to {args.report}")
        if args.output:
            if partial:
                print(f"partial result: not writing {args.output}")
            else:
                np.save(args.output, out)
                print(f"result written to {args.output}")
    finally:
        if ctx is not None:
            ctx.stop()
    return 0


def _cmd_fsck(args) -> int:
    import os

    from repro.sparkle import DurableBlockStore, SolveJournal
    from repro.sparkle.errors import CorruptBlockError, JournalError

    if not os.path.isdir(args.dir):
        print(f"no such checkpoint directory: {args.dir}", file=sys.stderr)
        return 2
    try:
        store = DurableBlockStore(args.dir)
    except (CorruptBlockError, JournalError) as exc:
        print(f"manifest unusable: {exc}", file=sys.stderr)
        return 1
    report = store.fsck()
    journal = SolveJournal(args.dir).verify()
    print(
        f"fsck {args.dir}: {report.blocks_ok}/{report.blocks_total} blocks ok, "
        f"{report.bytes_verified} B verified"
    )
    for key in report.corrupt:
        print(f"  CORRUPT block {key}")
    for key in report.missing:
        print(f"  MISSING block {key}")
    for name in report.orphans:
        print(f"  orphan file {name} (uncommitted write; harmless)")
    if journal["exists"]:
        status = "complete" if journal["complete"] else (
            f"in progress through iteration {journal['last_iteration']}"
        )
        print(
            f"journal: {journal['records_valid']}/{journal['records_total']} "
            f"records valid, {status}"
        )
        if journal["torn_tail"]:
            print("  torn tail: trailing record(s) invalid, "
                  "will be truncated on resume")
    else:
        print("journal: none")
    clean = report.clean and not journal["torn_tail"]
    print("clean" if clean else "DAMAGED (solves recover by recomputation)")
    return 0 if clean else 1


def _cmd_memstat(args) -> int:
    import json
    import os

    if not os.path.isfile(args.report):
        print(f"no such report file: {args.report}", file=sys.stderr)
        return 2
    try:
        with open(args.report, encoding="utf-8") as fh:
            summary = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read report: {exc}", file=sys.stderr)
        return 2
    counters = (
        ("spill_bytes_written", "B"),
        ("spill_bytes_read", "B"),
        ("blocks_spilled", ""),
        ("shuffle_blocks_spilled", ""),
        ("spill_reads", ""),
        ("admission_waits", ""),
        ("admission_wait_seconds", "s"),
        ("mem_squeezes", ""),
        ("strategy_degradations", ""),
        ("forced_grants", ""),
        ("shuffle_partial_cleanups", ""),
    )
    if not any(key in summary for key, _unit in counters):
        print(
            "report has no memory-governor counters (was it written by "
            "'solve --report' on a spark run?)",
            file=sys.stderr,
        )
        return 2
    label = summary.get("spec", "?")
    print(
        f"memstat {args.report}: {label} "
        f"strategy={summary.get('strategy', '?')} n={summary.get('n', '?')}"
    )
    for key, unit in counters:
        if key in summary:
            suffix = f" {unit}" if unit else ""
            print(f"  {key:26s} {summary[key]}{suffix}")
    transitions = summary.get("pressure_transitions") or []
    print(f"  pressure_transitions       {len(transitions)}")
    for hop in transitions:
        print(f"    {hop}")
    extras = summary.get("extras") or {}
    if extras.get("degraded"):
        d = extras["degraded"]
        print(
            f"  degraded: {d.get('from')}->{d.get('to')} at iteration "
            f"{d.get('at_iteration')}"
        )
    budget = extras.get("memory_budget")
    if budget:
        print(
            f"  budget: {budget.get('live_bytes')} B live of "
            f"{budget.get('budget_bytes')} B "
            f"(initial {budget.get('initial_budget_bytes')} B, "
            f"level {budget.get('level')})"
        )
    return 0


def _cmd_workers(args) -> int:
    import json
    import os

    if not os.path.isfile(args.report):
        print(f"no such report file: {args.report}", file=sys.stderr)
        return 2
    try:
        with open(args.report, encoding="utf-8") as fh:
            summary = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read report: {exc}", file=sys.stderr)
        return 2
    counters = (
        "worker_crashes",
        "workers_respawned",
        "heartbeats_missed",
        "deadlines_exceeded",
        "poison_tasks",
        "orphan_segments_reclaimed",
        "backend_degradations",
    )
    if not any(key in summary for key in counters):
        print(
            "report has no worker-supervision counters (was it written by "
            "'solve --report' on a spark run?)",
            file=sys.stderr,
        )
        return 2
    label = summary.get("spec", "?")
    print(
        f"workers {args.report}: {label} "
        f"strategy={summary.get('strategy', '?')} n={summary.get('n', '?')}"
    )
    for key in counters:
        if key in summary:
            print(f"  {key:26s} {summary[key]}")
    extras = summary.get("extras") or {}
    for d in extras.get("backend_degradations") or []:
        print(
            f"  degraded backend: {d.get('from')}->{d.get('to')} at "
            f"iteration {d.get('at_iteration')} "
            f"({d.get('quarantined_tasks')} poison task(s))"
        )
    return 0


def _parse_tenant_policies(args):
    """Fold repeatable --tenant-* flags into TenantPolicy objects.

    Each flag names one tenant (``NAME=VALUE``); a tenant may appear in
    several flags and the pieces are merged into a single policy.
    Returns ``(policies, error_message)``.
    """
    from repro.service import TenantPolicy

    fields: dict[str, dict] = {}

    def _split(flag, raw):
        name, sep, value = raw.partition("=")
        if not sep or not name or not value:
            raise ValueError(f"{flag} expects NAME=VALUE, got {raw!r}")
        return name, value

    try:
        for raw in args.tenant_weight or []:
            name, value = _split("--tenant-weight", raw)
            fields.setdefault(name, {})["weight"] = int(value)
        for raw in args.tenant_quota or []:
            name, value = _split("--tenant-quota", raw)
            fields.setdefault(name, {})["quota_bytes"] = int(value)
        for raw in args.tenant_rate or []:
            name, value = _split("--tenant-rate", raw)
            rate, sep, burst = value.partition(":")
            spec = fields.setdefault(name, {})
            spec["rate"] = float(rate)
            if sep:
                spec["burst"] = int(burst)
        policies = {
            name: TenantPolicy(**spec) for name, spec in fields.items()
        }
    except ValueError as exc:
        return None, str(exc)
    return policies, None


def _cmd_serve(args) -> int:
    from repro.service import (
        RequestJournal,
        ServiceConfig,
        SolverService,
        serve_forever,
    )
    from repro.sparkle import SparkleContext

    if args.resume and not args.journal_dir:
        print("--resume requires --journal-dir", file=sys.stderr)
        return 2
    if args.pipeline_depth < 1:
        print("--pipeline-depth must be >= 1", file=sys.stderr)
        return 2
    policies, err = _parse_tenant_policies(args)
    if err is not None:
        print(err, file=sys.stderr)
        return 2
    if args.memory_budget is None and any(
        p.quota_bytes is not None for p in (policies or {}).values()
    ):
        print("--tenant-quota requires --memory-budget (quotas are "
              "attributed through the memory governor)", file=sys.stderr)
        return 2
    sc = SparkleContext(
        num_executors=args.executors,
        cores_per_executor=args.cores,
        backend=args.backend,
        memory_budget_bytes=args.memory_budget,
        pipeline_depth=args.pipeline_depth,
    )
    config = ServiceConfig(
        max_queue_depth=args.max_queue_depth,
        cache_entries=args.cache_entries,
        retries=args.retries,
        default_deadline=args.default_deadline,
        max_frame_bytes=args.max_frame_bytes,
        tenant_policies=policies,
        brownout=not args.no_brownout,
    )
    journal = RequestJournal(args.journal_dir) if args.journal_dir else None
    service = SolverService(sc, config=config, journal=journal)
    if args.resume:
        replayed = service.resume()
        print(f"resume: rehydrated {service.metrics.results_rehydrated} "
              f"cached result(s), replaying {len(replayed)} in-flight "
              f"request(s) from the journal")
    print(f"serving solves on {args.socket} "
          f"(backend={args.backend}, executors={args.executors}, "
          f"queue<= {config.max_queue_depth}, cache {config.cache_entries} entries"
          + (f", journal {args.journal_dir}" if journal is not None else "")
          + ")")
    print("stop with Ctrl-C (drains, checkpoints the journal); query with: "
          f"python -m repro request --socket {args.socket} <problem> --n <N>")
    try:
        # serve_forever owns the drain sequence: on SIGTERM/SIGINT it
        # sheds new admissions, settles in-flight work, checkpoints the
        # journal, and unlinks the socket — all BEFORE the context
        # teardown below, so late clients fail fast on a dead address
        # instead of hanging on a half-dead service.
        serve_forever(service, args.socket, max_requests=args.max_requests)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        sc.stop()
        summary = service.metrics.summary()
        per_tenant = summary.pop("per_tenant", {})
        print("service counters:")
        for key, value in sorted(summary.items()):
            print(f"  {key:28s} {value}")
        if per_tenant:
            print("per-tenant:")
            for tenant, counters in sorted(per_tenant.items()):
                print(f"  {tenant:20s} requests={counters['requests']} "
                      f"sheds={counters['sheds']} "
                      f"cache_hits={counters['cache_hits']} "
                      f"passes={counters.get('engine_passes', 0)} "
                      f"quota_rejections="
                      f"{counters.get('quota_rejections', 0)} "
                      f"rate_limited={counters.get('rate_limited', 0)}")
    return 0


def _cmd_request(args) -> int:
    from repro.service import send_request

    payload = {
        "problem": args.problem,
        "n": args.n,
        "seed": args.seed,
        "density": args.density,
        "r": args.r,
        "strategy": args.strategy,
        "deadline": args.deadline,
        "timeout": args.timeout,
        "return_result": bool(args.output),
        "tenant": args.tenant,
        "idempotency_key": args.idempotency_key,
    }
    if args.stats:
        payload = {"op": "stats"}
    reply = send_request(
        args.socket, payload, timeout=args.timeout, retries=args.retries
    )
    if reply.get("status") != "ok":
        exc = reply.get("error")
        retryable = "retryable" if reply.get("retryable") else "not retryable"
        print(f"error ({type(exc).__name__}, {retryable}): {exc}",
              file=sys.stderr)
        return 1
    if args.stats:
        per_tenant = reply.pop("per_tenant", {}) or {}
        pipeline = reply.pop("pipeline", {}) or {}
        ledgers = reply.pop("tenants", {}) or {}
        for key, value in sorted(reply.items()):
            if key != "status":
                print(f"{key:28s} {value}")
        for key, value in sorted(pipeline.items()):
            print(f"pipeline.{key:19s} {value}")
        for tenant, counters in sorted(per_tenant.items()):
            print(f"tenant {tenant:20s} requests={counters['requests']} "
                  f"sheds={counters['sheds']} "
                  f"cache_hits={counters['cache_hits']} "
                  f"passes={counters.get('engine_passes', 0)} "
                  f"quota_rejections={counters.get('quota_rejections', 0)} "
                  f"rate_limited={counters.get('rate_limited', 0)}")
        for tenant, ledger in sorted(ledgers.items()):
            quota = ledger.get("quota_bytes")
            print(f"quota {tenant:21s} held={ledger.get('held_bytes', 0)} "
                  f"quota={'-' if quota is None else quota}")
        return 0
    if args.output:
        np.save(args.output, reply.pop("result"))
        print(f"result written to {args.output}")
    provenance = []
    if reply.get("from_cache"):
        provenance.append("cache hit")
    if reply.get("coalesced"):
        provenance.append("coalesced")
    print(f"ok fingerprint={reply['fingerprint']} "
          f"wall={reply['wall_seconds']:.3f}s"
          + (f" ({', '.join(provenance)})" if provenance else ""))
    return 0


def _cmd_tune(args) -> int:
    from repro.cluster import haswell16, laptop, skylake16
    from repro.core import tune
    from repro.core.gep import (
        FloydWarshallGep,
        GaussianEliminationGep,
        TransitiveClosureGep,
    )

    clusters = {"skylake16": skylake16, "haswell16": haswell16, "laptop": laptop}
    specs = {
        "apsp": FloydWarshallGep,
        "ge": GaussianEliminationGep,
        "tc": TransitiveClosureGep,
    }
    advice = tune(specs[args.problem](), args.n, clusters[args.cluster]())
    print(advice.describe())
    print("\ntop alternatives:")
    for r, plan, secs in advice.ranking[1:6]:
        print(f"  {plan.label():36s} block={args.n // r:>5}  ~{secs:.0f}s")
    return 0


def _cmd_info(_args) -> int:
    import repro
    from repro.cluster import haswell16, laptop, skylake16
    from repro.semiring import available_semirings

    print(f"repro {repro.__version__}")
    print(f"semirings: {', '.join(available_semirings())}")
    for preset in (skylake16(), haswell16(), laptop()):
        print(f"cluster preset {preset.describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run a DP solver")
    solve.add_argument("problem", choices=("apsp", "ge", "tc"))
    solve.add_argument("--input", help=".npy input matrix (else generated)")
    solve.add_argument("--output", help="write the result as .npy")
    solve.add_argument("--n", type=int, default=128)
    solve.add_argument("--density", type=float, default=0.3)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--engine", choices=("reference", "local", "spark"),
                       default="local")
    solve.add_argument("--r", type=int, default=4)
    solve.add_argument("--kernel", choices=("iterative", "recursive"),
                       default="recursive")
    solve.add_argument("--r-shared", dest="r_shared", type=int, default=4)
    solve.add_argument("--omp", type=int, default=1)
    solve.add_argument("--strategy", choices=("im", "cb", "bcast"), default="im",
                       help="distribution strategy: im (Listing 1), cb "
                            "(Listing 2), or bcast (CB via broadcast "
                            "variables — a design-space ablation)")
    solve.add_argument("--executors", type=int, default=4)
    solve.add_argument("--cores", type=int, default=2)
    solve.add_argument(
        "--backend", choices=("threads", "processes"), default="threads",
        help="spark-engine execution backend: threads (default, "
             "deterministic in-process pool) or processes (one worker "
             "process per executor; kernel tile updates run on multiple "
             "cores via shared-memory transport — bit-identical results)")
    solve.add_argument(
        "--dispatch", choices=("tile", "batch"), default="tile",
        help="process-backend kernel dispatch: tile (default; one IPC "
             "round-trip per tile update) or batch (fuse a stage's tile "
             "updates into one round-trip per worker; bit-identical "
             "results); requires --backend processes")
    solve.add_argument(
        "--gang-stages", action="store_true",
        help="dispatch each batched kernel wave as a barrier gang spread "
             "across the whole worker pool, with all-or-nothing retry on "
             "member failure (JAMPI-style gang scheduling); requires "
             "--dispatch batch")
    solve.add_argument(
        "--affinity", choices=("on", "off"), default="on",
        help="tile-affinity scheduling for the process backend: keep "
             "routing each tile to the worker whose shared-memory slab "
             "already holds it (default on)")
    solve.add_argument(
        "--pipeline-depth", dest="pipeline_depth", type=int, default=1,
        metavar="N",
        help="wavefront pipelining for the spark engine: overlap up to N "
             "outer iterations under the derived tile-level dependence "
             "relation (bit-identical results; default 1 = strict "
             "per-iteration barriers)")
    solve.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="durable checkpoint/journal directory for the spark engine: "
             "every completed outer iteration is snapshotted (checksummed, "
             "crash-atomic) and journaled before the solve advances")
    solve.add_argument(
        "--resume", action="store_true",
        help="resume a killed solve from the --checkpoint-dir journal; "
             "bit-identical to an uninterrupted run (safe when no journal "
             "exists: starts fresh)")
    solve.add_argument(
        "--max-iterations", type=int, default=None, metavar="K",
        help="stop after K journaled outer iterations (staged long solves; "
             "finish later with --resume)")
    solve.add_argument(
        "--memory-budget", dest="memory_budget", type=int, default=None,
        metavar="BYTES",
        help="unified memory budget for the spark engine: RDD cache and "
             "shuffle staging share BYTES, overflow spills to disk instead "
             "of failing, and task launches queue under pressure")
    solve.add_argument(
        "--spill-dir", dest="spill_dir", metavar="DIR", default=None,
        help="spill store directory (default: <checkpoint-dir>/spill, else "
             "a temporary directory); requires --memory-budget")
    solve.add_argument(
        "--degrade-on-pressure", action="store_true",
        help="switch an IM solve to CB at the next outer-iteration boundary "
             "when memory pressure goes critical (bit-identical result); "
             "requires --memory-budget")
    solve.add_argument(
        "--heartbeat-interval", dest="heartbeat_interval", type=float,
        default=None, metavar="SECONDS",
        help="worker heartbeat period for the process backend (default "
             "0.25 s; a worker silent for 2x this is presumed hung and "
             "SIGKILLed by the driver watchdog; 0 disables heartbeats)")
    solve.add_argument(
        "--task-deadline", dest="task_deadline", type=float, default=None,
        metavar="SECONDS",
        help="wall-clock deadline per offloaded kernel call (process "
             "backend); an overrunning worker is killed and the call "
             "retried through the scheduler's attempt machinery")
    solve.add_argument(
        "--max-task-failures", dest="max_task_failures", type=int,
        default=None, metavar="N",
        help="quarantine a kernel call as poison after it kills N fresh "
             "workers (default 3)")
    solve.add_argument(
        "--degrade-on-crash", action="store_true",
        help="fall back from the process backend to the thread path at the "
             "next outer-iteration boundary once a kernel call is "
             "quarantined as poison (bit-identical result); requires "
             "--backend processes")
    solve.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the full solve report (engine/memory/recovery counters) "
             "as JSON; inspect later with 'memstat FILE' or 'workers FILE'")
    solve.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="seeded fault injection for the spark engine: 'seed=42' (default "
             "fault mix) or e.g. 'seed=7,kill=0.1,lose=0.05,slow=0.1:0.02,"
             "storage=0.05,overflow=0.02,torn_write=0.1,corrupt_block=0.05,"
             "mem_squeeze=0.2' "
             "(rates per site; slow takes rate:delay_seconds; torn_write/"
             "corrupt_block need --checkpoint-dir; mem_squeeze needs "
             "--memory-budget; worker_kill/worker_hang/worker_oom "
             "SIGKILL/SIGSTOP real worker processes and need --backend "
             "processes; add parallel=1 for concurrent chaos)")
    solve.set_defaults(func=_cmd_solve)

    fsck = sub.add_parser(
        "fsck", help="verify checkpoint-directory integrity")
    fsck.add_argument("dir", help="checkpoint directory to verify")
    fsck.set_defaults(func=_cmd_fsck)

    memstat = sub.add_parser(
        "memstat", help="print memory-governor counters from a solve report")
    memstat.add_argument("report", help="JSON file from 'solve --report'")
    memstat.set_defaults(func=_cmd_memstat)

    workers = sub.add_parser(
        "workers",
        help="print worker-supervision counters from a solve report")
    workers.add_argument("report", help="JSON file from 'solve --report'")
    workers.set_defaults(func=_cmd_workers)

    serve = sub.add_parser(
        "serve",
        help="run the solver as a long-lived service on a Unix socket")
    serve.add_argument("--socket", default="/tmp/repro-solver.sock",
                       help="Unix socket path to listen on")
    serve.add_argument("--executors", type=int, default=4)
    serve.add_argument("--cores", type=int, default=2)
    serve.add_argument("--backend", choices=("threads", "processes"),
                       default="threads")
    serve.add_argument("--memory-budget", dest="memory_budget", type=int,
                       default=None, metavar="BYTES",
                       help="unified engine memory budget; also gates "
                            "request admission (critical pressure sheds)")
    serve.add_argument("--pipeline-depth", dest="pipeline_depth", type=int,
                       default=1, metavar="N",
                       help="wavefront pipelining depth for the service "
                            "engine (default 1 = strict barriers)")
    serve.add_argument("--max-queue-depth", dest="max_queue_depth", type=int,
                       default=16,
                       help="bounded request queue; overflow is shed with a "
                            "typed, retryable ServiceOverloadedError")
    serve.add_argument("--cache-entries", dest="cache_entries", type=int,
                       default=32,
                       help="LRU result-cache capacity (checksummed; bytes "
                            "charged to the storage pool)")
    serve.add_argument("--retries", type=int, default=2,
                       help="engine passes retried per request after a "
                            "transient fault")
    serve.add_argument("--default-deadline", dest="default_deadline",
                       type=float, default=None, metavar="SECONDS",
                       help="deadline applied to requests that carry none")
    serve.add_argument("--journal-dir", dest="journal_dir", default=None,
                       help="directory for the durable request WAL + result "
                            "spool; enables crash recovery via --resume")
    serve.add_argument("--resume", action="store_true",
                       help="replay incomplete journaled requests and "
                            "rehydrate the result cache before serving "
                            "(requires --journal-dir)")
    serve.add_argument("--max-frame-bytes", dest="max_frame_bytes", type=int,
                       default=256 * 1024 * 1024,
                       help="refuse socket frames announcing more than this "
                            "many bytes (allocation-bomb guard)")
    serve.add_argument("--max-requests", dest="max_requests", type=int,
                       default=None,
                       help="exit after N requests (tests/demos)")
    serve.add_argument("--tenant-weight", dest="tenant_weight",
                       action="append", default=None, metavar="NAME=W",
                       help="fair-share weight for a tenant in the "
                            "deficit-round-robin dispatch queue "
                            "(repeatable; default weight 1)")
    serve.add_argument("--tenant-quota", dest="tenant_quota",
                       action="append", default=None, metavar="NAME=BYTES",
                       help="byte quota for a tenant's in-flight working "
                            "set; breaches are refused with a typed, "
                            "retryable TenantQuotaExceededError "
                            "(repeatable)")
    serve.add_argument("--tenant-rate", dest="tenant_rate",
                       action="append", default=None,
                       metavar="NAME=RATE[:BURST]",
                       help="token-bucket admission rate (requests/s, "
                            "optional burst) for a tenant (repeatable)")
    serve.add_argument("--no-brownout", dest="no_brownout",
                       action="store_true",
                       help="disable the brownout degradation ladder "
                            "(clamp pipeline depth -> degrade IM->CB -> "
                            "shed lowest-weight tenants)")
    serve.set_defaults(func=_cmd_serve)

    request = sub.add_parser(
        "request", help="send one solve request to a running 'serve'")
    request.add_argument("problem", choices=("apsp", "ge", "tc"), nargs="?",
                         default="apsp")
    request.add_argument("--socket", default="/tmp/repro-solver.sock")
    request.add_argument("--n", type=int, default=128)
    request.add_argument("--density", type=float, default=0.3)
    request.add_argument("--seed", type=int, default=0)
    request.add_argument("--r", type=int, default=4)
    request.add_argument("--strategy", choices=("im", "cb", "bcast"),
                         default="im")
    request.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget; overruns cancel the solve "
                              "with RequestDeadlineExceeded")
    request.add_argument("--timeout", type=float, default=120.0,
                         help="client-side socket timeout")
    request.add_argument("--output", default=None,
                         help="fetch the result matrix and save as .npy")
    request.add_argument("--tenant", default=None,
                         help="accounting principal; metered per-tenant in "
                              "the service's --stats breakdown")
    request.add_argument("--idempotency-key", dest="idempotency_key",
                         default=None,
                         help="stable key for this submission; resending it "
                              "(e.g. after a server crash) returns the "
                              "original result instead of re-running")
    request.add_argument("--retries", type=int, default=0,
                         help="reconnect attempts on transport failure "
                              "(jittered backoff; auto-generates and reuses "
                              "an idempotency key)")
    request.add_argument("--stats", action="store_true",
                         help="print the service's request-plane counters "
                              "instead of solving")
    request.set_defaults(func=_cmd_request)

    tune_p = sub.add_parser("tune", help="analytical configuration advice")
    tune_p.add_argument("problem", choices=("apsp", "ge", "tc"))
    tune_p.add_argument("--n", type=int, default=32768)
    tune_p.add_argument("--cluster", choices=("skylake16", "haswell16", "laptop"),
                        default="skylake16")
    tune_p.set_defaults(func=_cmd_tune)

    exp = sub.add_parser("experiments", help="regenerate the paper artifacts")
    exp.add_argument("names", nargs="*", default=None)
    exp.set_defaults(func=None)

    info = sub.add_parser("info", help="version and presets")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if args.command == "experiments":
        from repro.experiments.harness import main as exp_main

        return exp_main(args.names or None)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
