"""Solver-as-a-service: a hardened request plane over one SparkleContext.

:class:`SolverService` turns the batch GEP solver into a long-lived
service (DESIGN.md §15).  Concurrent clients call :meth:`SolverService.solve`
(or :meth:`~SolverService.submit` for a ticket); every request passes
through four defensive layers before an engine pass runs:

1. **Admission control** — a bounded request queue gated by
   :class:`~repro.sparkle.memory.MemoryManager` pressure.  ``critical``
   pressure sheds new work outright; ``pressured`` halves the queue
   bound; overflow raises a typed, retryable
   :class:`~repro.sparkle.errors.ServiceOverloadedError` instead of
   letting latency grow without bound.
2. **Single-flight dedup** — requests with the same solve fingerprint
   (:meth:`~repro.sparkle.requests.SolveRequest.fingerprint`, the same
   identity the resume journal uses) coalesce onto one engine pass, and
   completed results land in a checksummed LRU cache charged to the
   storage pool (squeezes evict it before it can go stale).
3. **Deadlines** — a per-request wall-clock budget covers queueing and
   the pass itself.  Mid-flight it propagates into the scheduler's
   stage/attempt boundaries (``set_job_deadline``) and the supervisor's
   per-kernel-call deadline, so an overrun SIGKILLs stuck workers and
   reaps their segments via the PR 5 crash protocol rather than leaking.
4. **Retry + circuit breaker** — transient engine faults are retried
   with bounded backoff; repeated :class:`~repro.sparkle.errors.WorkerCrashed`
   / :class:`~repro.sparkle.errors.PoisonTaskError` under the process
   backend trips a breaker that fails the data plane over to in-process
   threads (``disable_offload`` + the supervisor degrade latch), then
   half-opens a probe after a cooldown.

Engine passes are **serialized** through one dispatcher thread:
concurrent passes over a shared context would interleave stage ids,
affinity resets, and metrics.  Concurrency lives entirely in the
request plane — which is exactly what the single-flight/caching layers
exploit.  Between passes :meth:`SparkleContext.reclaim_solve_state`
drops shuffle outputs, cached blocks, and shared-storage tiles so a
long-lived service does not accrete per-solve state.

The module also ships :func:`run_request_storm` (the seeded chaos
driver for ``request_storm`` fault plans) and a minimal Unix-socket
server/client pair backing ``repro serve`` / ``repro request``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import socket
import struct
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from .sparkle.errors import (
    BlockNotFoundError,
    CircuitOpenError,
    ExecutorLost,
    JobAborted,
    PoisonTaskError,
    RequestDeadlineExceeded,
    ServiceOverloadedError,
    ShuffleFetchFailed,
    SparkleError,
    StorageCapacityError,
    TaskDeadlineExceeded,
    TaskKilled,
    TransientIOError,
    WorkerCrashed,
)
from .sparkle.memory import PRESSURE_CRITICAL, PRESSURE_OK
from .sparkle.metrics import ServiceMetrics
from .sparkle.requests import SolveRequest, SolveResponse

__all__ = [
    "ServiceConfig",
    "SolveTicket",
    "ResultCache",
    "CircuitBreaker",
    "SolverService",
    "run_request_storm",
    "serve_forever",
    "send_request",
    "is_retryable",
]

#: Engine faults worth a service-level retry: the solve may succeed on a
#: fresh pass (respawned workers, recomputed lineage, relaxed pressure).
#: ``RequestDeadlineExceeded`` is deliberately absent — the budget is
#: spent, retrying cannot help.
SERVICE_RETRYABLE = (
    WorkerCrashed,
    PoisonTaskError,
    TaskDeadlineExceeded,
    TaskKilled,
    ExecutorLost,
    TransientIOError,
    ShuffleFetchFailed,
    BlockNotFoundError,
    StorageCapacityError,
    JobAborted,
)

#: Faults that indict the *process backend* specifically and count
#: toward tripping the circuit breaker.
_BREAKER_FAULTS = (WorkerCrashed, PoisonTaskError)


def is_retryable(exc: BaseException) -> bool:
    """Should a client resubmit after this failure?

    Overload sheds and open-circuit rejections are retryable by
    definition (they carry ``retry_after`` hints); engine faults follow
    :data:`SERVICE_RETRYABLE`.  Deadline overruns are not retryable —
    the same budget will be exceeded again.
    """
    if isinstance(exc, (ServiceOverloadedError, CircuitOpenError)):
        return True
    if isinstance(exc, RequestDeadlineExceeded):
        return False
    return isinstance(exc, SERVICE_RETRYABLE)


def _breaker_fault(exc: BaseException) -> bool:
    """Does this failure count against the process backend's breaker?

    The scheduler wraps exhausted retries as ``JobAborted(...) from
    last_exc``, so the real fault rides in ``__cause__``.
    """
    if isinstance(exc, _BREAKER_FAULTS):
        return True
    if isinstance(exc, JobAborted) and exc.__cause__ is not None:
        return isinstance(exc.__cause__, _BREAKER_FAULTS)
    return False


@dataclass
class ServiceConfig:
    """Tunables for the request plane.

    Parameters
    ----------
    max_queue_depth:
        Flights (deduplicated solves) allowed to wait behind the
        dispatcher under ``ok`` pressure; halved (floor 1) under
        ``pressured``, zero effective admission under ``critical``.
    cache_entries:
        LRU result-cache capacity in entries; bytes are additionally
        bounded by the storage pool (reservations fail → evict).
    retries:
        Engine passes retried per flight after a retryable fault.
    retry_backoff_base / retry_backoff_cap:
        Bounded exponential backoff between passes:
        ``min(base · 2^(attempt-1), cap)`` seconds.
    breaker_threshold:
        Consecutive breaker-countable faults (worker crashes / poison
        quarantines) before the circuit opens and passes fail over to
        the thread path.
    breaker_cooldown:
        Seconds an open circuit waits before half-opening one probe
        pass back onto the process backend.
    shed_retry_after:
        ``retry_after`` hint attached to overload sheds, seconds.
    default_deadline:
        Applied to requests that carry none (``None`` = unlimited).
    """

    max_queue_depth: int = 16
    cache_entries: int = 32
    retries: int = 2
    retry_backoff_base: float = 0.02
    retry_backoff_cap: float = 0.25
    breaker_threshold: int = 3
    breaker_cooldown: float = 2.0
    shed_retry_after: float = 0.25
    default_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


class SolveTicket:
    """A claim on one admitted request; ``result()`` blocks for it.

    Tickets settle exactly once (completed / failed / deadline), no
    matter how many parties race — the flight finishing, the waiter's
    own deadline firing, service shutdown — so per-request metrics are
    counted exactly once too.
    """

    def __init__(
        self,
        service: "SolverService",
        request: SolveRequest,
        fingerprint: str,
        deadline_at: float | None,
    ) -> None:
        self._service = service
        self.request = request
        self.fingerprint = fingerprint
        #: absolute ``time.monotonic()`` deadline (None = unbounded)
        self.deadline_at = deadline_at
        self.coalesced = False
        self.from_cache = False
        self._t0 = time.monotonic()
        self._event = threading.Event()
        self._settle_lock = threading.Lock()
        self._outcome: str | None = None
        self._response: SolveResponse | None = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def outcome(self) -> str | None:
        """Terminal state label once settled (DESIGN.md §15)."""
        return self._outcome

    def _settle(self, outcome: str) -> bool:
        """Claim the terminal state; True for the first caller only."""
        with self._settle_lock:
            if self._outcome is not None:
                return False
            self._outcome = outcome
            return True

    def _fulfill(self, result: np.ndarray, *, from_cache: bool = False) -> None:
        if not self._settle("completed"):
            return
        self.from_cache = from_cache
        self._response = SolveResponse(
            result=result,
            fingerprint=self.fingerprint,
            request_id=self.request.request_id,
            from_cache=from_cache,
            coalesced=self.coalesced,
            wall_seconds=time.monotonic() - self._t0,
        )
        m = self._service.metrics
        with self._service._metrics_lock:
            m.requests_completed += 1
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        deadline = isinstance(exc, RequestDeadlineExceeded)
        if not self._settle("deadline-cancelled" if deadline else "failed"):
            return
        self._error = exc
        m = self._service.metrics
        with self._service._metrics_lock:
            if deadline:
                m.deadline_cancelled += 1
            else:
                m.requests_failed += 1
        self._event.set()

    def result(self, timeout: float | None = None) -> SolveResponse:
        """Block for the response; raises the typed failure on error.

        A waiter whose own deadline passes while the (possibly
        coalesced) flight is still running raises
        :class:`RequestDeadlineExceeded` — other waiters on the same
        flight with looser deadlines are unaffected.
        """
        timeout_at = None if timeout is None else time.monotonic() + timeout
        while not self._event.is_set():
            now = time.monotonic()
            if self.deadline_at is not None and now >= self.deadline_at:
                self._fail(
                    RequestDeadlineExceeded(
                        "request deadline expired while waiting for the flight",
                        deadline=self.request.deadline,
                        elapsed=now - self._t0,
                    )
                )
                break
            if timeout_at is not None and now >= timeout_at:
                raise TimeoutError(
                    f"no response within {timeout:.3f}s (request still in flight)"
                )
            wake_at = [t for t in (self.deadline_at, timeout_at) if t is not None]
            self._event.wait(min(wake_at) - now if wake_at else None)
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class _Flight:
    """One deduplicated engine pass plus everyone waiting on it."""

    __slots__ = ("fingerprint", "waiters", "done")

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.waiters: list[SolveTicket] = []
        self.done = False

    def deadline_at(self) -> float | None:
        """The pass runs to the *loosest* waiter's deadline.

        Tighter waiters time out individually in ``result()``; only
        when every waiter has a deadline may the engine pass itself be
        cancelled (max of the absolute deadlines).
        """
        worst: float | None = None
        for t in self.waiters:
            if t.deadline_at is None:
                return None
            worst = t.deadline_at if worst is None else max(worst, t.deadline_at)
        return worst


class _CacheEntry:
    __slots__ = ("array", "checksum", "nbytes")

    def __init__(self, array: np.ndarray, checksum: str) -> None:
        self.array = array
        self.checksum = checksum
        self.nbytes = int(array.nbytes)


def _checksum(array: np.ndarray) -> str:
    return hashlib.blake2b(
        np.ascontiguousarray(array).tobytes(), digest_size=16
    ).hexdigest()


class ResultCache:
    """Checksummed LRU of solve results, charged to the storage pool.

    Every hit re-verifies the entry's BLAKE2b checksum — a corrupted or
    partially-evicted buffer is dropped and treated as a miss rather
    than served.  Bytes are reserved from the MemoryManager's
    ``storage`` pool; when a reservation fails the LRU tail is evicted
    until it fits (or the entry is simply not cached).  A budget
    squeeze invalidates entries until pressure clears, so the cache
    never pins memory the engine needs.
    """

    OWNER = "service-cache"

    def __init__(self, max_entries: int, memory, metrics: ServiceMetrics) -> None:
        self.max_entries = max_entries
        self._memory = memory
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def get(self, fingerprint: str) -> np.ndarray | None:
        """A verified copy of the cached result, or None."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._metrics.cache_misses += 1
                return None
            if _checksum(entry.array) != entry.checksum:
                self._metrics.cache_integrity_failures += 1
                self._drop_locked(fingerprint)
                self._metrics.cache_misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._metrics.cache_hits += 1
            # Callers get a private copy; the cached buffer never escapes.
            return entry.array.copy()

    def put(self, fingerprint: str, result: np.ndarray) -> bool:
        """Cache a fresh result; False if it could not be admitted."""
        if self.max_entries == 0:
            return False
        array = np.ascontiguousarray(result).copy()
        entry = _CacheEntry(array, _checksum(array))
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                return True
            while len(self._entries) >= self.max_entries:
                self._evict_lru_locked()
            while not self._reserve(entry.nbytes):
                if not self._entries:
                    return False
                self._evict_lru_locked()
            self._entries[fingerprint] = entry
            return True

    def invalidate(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint not in self._entries:
                return False
            self._drop_locked(fingerprint)
            self._metrics.cache_invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            for fp in list(self._entries):
                self._drop_locked(fp)

    def on_squeeze(self, new_budget: int) -> None:
        """Squeeze listener: shed entries until pressure clears.

        Runs outside the MemoryManager's lock (see ``squeeze``), so the
        ``release`` calls inside ``_drop_locked`` cannot deadlock.
        """
        with self._lock:
            while self._entries and self._memory is not None:
                if self._memory.pressure() == PRESSURE_OK:
                    break
                self._drop_locked(next(iter(self._entries)))
                self._metrics.cache_invalidations += 1

    def _reserve(self, nbytes: int) -> bool:
        if self._memory is None:
            return True
        return self._memory.reserve("storage", self.OWNER, nbytes)

    def _evict_lru_locked(self) -> None:
        self._drop_locked(next(iter(self._entries)))
        self._metrics.cache_evictions += 1

    def _drop_locked(self, fingerprint: str) -> None:
        entry = self._entries.pop(fingerprint)
        if self._memory is not None:
            self._memory.release("storage", self.OWNER, entry.nbytes)


class CircuitBreaker:
    """Closed → open → half-open breaker over the process backend.

    ``breaker_threshold`` consecutive worker-crash/poison faults open
    the circuit: subsequent passes run with offload disabled (the
    thread path — bit-identical, just slower), and the supervisor's
    degrade latch is forced so the solver's own ``degrade_on_crash``
    machinery agrees.  After ``cooldown`` seconds one probe pass
    half-opens back onto processes; success closes the circuit,
    another fault reopens it.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int, cooldown: float, metrics: ServiceMetrics) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._metrics = metrics
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self.failures = 0
        self._opened_at = 0.0

    def allow_offload(self) -> bool:
        """May the next pass use the process backend?"""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.HALF_OPEN:
                # A probe is already in flight; stay on the safe path.
                return False
            if time.monotonic() - self._opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                self._metrics.circuit_half_opens += 1
                return True
            return False

    def record_success(self, *, offloaded: bool) -> None:
        with self._lock:
            if not offloaded:
                return
            if self.state == self.HALF_OPEN:
                self.state = self.CLOSED
                self._metrics.circuit_closes += 1
            self.failures = 0

    def record_failure(self, *, offloaded: bool) -> None:
        with self._lock:
            if not offloaded:
                return
            self.failures += 1
            if self.state == self.HALF_OPEN or self.failures >= self.threshold:
                if self.state != self.OPEN:
                    self._metrics.circuit_trips += 1
                self.state = self.OPEN
                self._opened_at = time.monotonic()
                self.failures = 0

    def retry_after(self) -> float:
        with self._lock:
            if self.state != self.OPEN:
                return 0.0
            return max(0.0, self.cooldown - (time.monotonic() - self._opened_at))


class SolverService:
    """Long-lived request plane over one shared :class:`SparkleContext`.

    Thread-safe: any number of client threads may call
    :meth:`submit`/:meth:`solve` concurrently.  Engine passes run one
    at a time on the internal dispatcher thread (see module docstring
    for why), with admission, dedup, caching, deadlines, retry, and the
    circuit breaker layered in front.
    """

    def __init__(self, sc, *, config: ServiceConfig | None = None) -> None:
        self.sc = sc
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self._metrics_lock = threading.Lock()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: "deque[_Flight]" = deque()
        self._inflight: dict[str, _Flight] = {}
        self._running: _Flight | None = None
        self._stopped = False
        self.cache = ResultCache(
            self.config.cache_entries, sc.memory_manager, self.metrics
        )
        if sc.memory_manager is not None:
            sc.memory_manager.add_squeeze_listener(self.cache.on_squeeze)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown,
            self.metrics,
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="solver-service", daemon=True
        )
        self._dispatcher.start()

    # -- client surface ------------------------------------------------

    def solve(
        self, request: SolveRequest, timeout: float | None = None
    ) -> SolveResponse:
        """Admit, run (or coalesce/serve from cache), and wait."""
        return self.submit(request).result(timeout)

    def submit(self, request: SolveRequest) -> SolveTicket:
        """Admit a request; returns immediately with a ticket.

        Raises :class:`ServiceOverloadedError` when admission control
        sheds the request (critical memory pressure, or the bounded
        queue is full).  Cache hits and coalesced requests bypass
        admission — they cost no engine pass, so shedding them would
        only waste work already done.
        """
        if request.deadline is None and self.config.default_deadline is not None:
            request = replace(request, deadline=self.config.default_deadline)
        fingerprint = request.fingerprint()
        deadline_at = (
            time.monotonic() + request.deadline
            if request.deadline is not None
            else None
        )
        cached: np.ndarray | None = None
        with self._lock:
            if self._stopped:
                raise RuntimeError("SolverService is stopped")
            with self._metrics_lock:
                self.metrics.requests_received += 1
            cached = self.cache.get(fingerprint)
            if cached is not None:
                with self._metrics_lock:
                    self.metrics.requests_admitted += 1
                ticket = SolveTicket(self, request, fingerprint, deadline_at)
                ticket._fulfill(cached, from_cache=True)
                return ticket
            flight = self._inflight.get(fingerprint)
            if flight is not None and not flight.done:
                with self._metrics_lock:
                    self.metrics.requests_admitted += 1
                    self.metrics.single_flight_coalesced += 1
                ticket = SolveTicket(self, request, fingerprint, deadline_at)
                ticket.coalesced = True
                flight.waiters.append(ticket)
                return ticket
            self._admit_locked(fingerprint)
            ticket = SolveTicket(self, request, fingerprint, deadline_at)
            flight = _Flight(fingerprint)
            flight.waiters.append(ticket)
            self._inflight[fingerprint] = flight
            self._queue.append(flight)
            self._work.notify_all()
            return ticket

    def _admit_locked(self, fingerprint: str) -> None:
        mm = self.sc.memory_manager
        level = mm.pressure() if mm is not None else PRESSURE_OK
        depth = len(self._queue) + (1 if self._running is not None else 0)
        if level == PRESSURE_CRITICAL:
            with self._metrics_lock:
                self.metrics.requests_shed += 1
            raise ServiceOverloadedError(
                "shedding new work: memory pressure is critical",
                level=level,
                queue_depth=depth,
                retry_after=self.config.shed_retry_after,
            )
        limit = self.config.max_queue_depth
        if level != PRESSURE_OK:
            limit = max(1, limit // 2)
        if depth >= limit:
            with self._metrics_lock:
                self.metrics.requests_shed += 1
            raise ServiceOverloadedError(
                f"request queue full ({depth} >= {limit} under {level} pressure)",
                level=level,
                queue_depth=depth,
                retry_after=self.config.shed_retry_after,
            )
        with self._metrics_lock:
            self.metrics.requests_admitted += 1
            if depth > 0:
                self.metrics.requests_queued += 1

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    self._work.wait()
                if not self._queue and self._stopped:
                    return
                flight = self._queue.popleft()
                self._running = flight
            try:
                self._run_flight(flight)
            finally:
                with self._lock:
                    self._running = None

    def _run_flight(self, flight: _Flight) -> None:
        cfg = self.config
        request = flight.waiters[0].request
        last_exc: BaseException | None = None
        for attempt in range(1, cfg.retries + 2):
            deadline_at = flight.deadline_at()
            if deadline_at is not None and time.monotonic() >= deadline_at:
                last_exc = RequestDeadlineExceeded(
                    "request deadline expired before the engine pass could run",
                    deadline=request.deadline,
                    elapsed=time.monotonic() - flight.waiters[0]._t0,
                )
                break
            offloaded = (
                self.sc.backend == "processes" and self.breaker.allow_offload()
            )
            try:
                result = self._run_engine_pass(
                    request, deadline_at, offload=offloaded
                )
            except RequestDeadlineExceeded as exc:
                last_exc = exc
                break  # budget spent; retrying cannot help
            except SERVICE_RETRYABLE as exc:
                last_exc = exc
                if _breaker_fault(exc):
                    self.breaker.record_failure(offloaded=offloaded)
                if attempt <= cfg.retries:
                    with self._metrics_lock:
                        self.metrics.retries += 1
                    time.sleep(
                        min(
                            cfg.retry_backoff_base * (2 ** (attempt - 1)),
                            cfg.retry_backoff_cap,
                        )
                    )
                continue
            except BaseException as exc:  # noqa: BLE001 — typed to the client
                last_exc = exc
                break
            else:
                self.breaker.record_success(offloaded=offloaded)
                self._finish_flight(flight, result)
                return
        assert last_exc is not None
        self._fail_flight(flight, last_exc)

    def _run_engine_pass(
        self, request: SolveRequest, deadline_at: float | None, *, offload: bool
    ) -> np.ndarray:
        """One solver pass with deadline plumbing and state reclamation.

        The request deadline reaches three layers: the scheduler checks
        it at stage and attempt boundaries (cheap, cooperative), and —
        for offloaded passes — the supervisor's per-call deadline is
        clamped to the remaining budget, so a kernel call stuck in a
        worker is SIGKILLed and reaped (shm segments included) by the
        PR 5 crash protocol instead of outliving the request.  Safe to
        mutate shared context state here because passes are serialized
        on the dispatcher thread; everything is restored in ``finally``.
        """
        sc = self.sc
        with self._metrics_lock:
            self.metrics.engine_passes += 1
            if sc.backend == "processes" and not offload:
                self.metrics.circuit_failovers += 1
        saved_task_deadline = sc.supervision.task_deadline
        sc._scheduler.set_job_deadline(deadline_at)
        if deadline_at is not None:
            remaining = max(deadline_at - time.monotonic(), 0.001)
            sc.supervision.override_task_deadline(
                remaining
                if saved_task_deadline is None
                else min(saved_task_deadline, remaining)
            )
        try:
            return self._solve(request, offload)
        finally:
            sc._scheduler.set_job_deadline(None)
            sc.supervision.override_task_deadline(saved_task_deadline)
            sc.reclaim_solve_state()

    def _solve(self, request: SolveRequest, offload: bool) -> np.ndarray:
        """Build a solver on the shared context and run it (test seam)."""
        from .core.dpspark import GepSparkSolver

        solver = GepSparkSolver(
            request.spec,
            self.sc,
            r=request.r,
            kernel=request.kernel,
            strategy=request.strategy,
            collect_stats=False,
        )
        if not offload:
            solver.disable_offload()
        result, _report = solver.solve(request.table)
        return result

    def _finish_flight(self, flight: _Flight, result: np.ndarray) -> None:
        # Cache before unpublishing the flight: a racing duplicate either
        # coalesces (pre-removal) or hits the cache (post-removal) — it
        # never slips between the two into a redundant engine pass.
        self.cache.put(flight.fingerprint, result)
        with self._lock:
            flight.done = True
            if self._inflight.get(flight.fingerprint) is flight:
                del self._inflight[flight.fingerprint]
            waiters = list(flight.waiters)
        for ticket in waiters:
            ticket._fulfill(result)

    def _fail_flight(self, flight: _Flight, exc: BaseException) -> None:
        with self._lock:
            flight.done = True
            if self._inflight.get(flight.fingerprint) is flight:
                del self._inflight[flight.fingerprint]
            waiters = list(flight.waiters)
        for ticket in waiters:
            ticket._fail(exc)

    # -- lifecycle -----------------------------------------------------

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service; by default drains queued flights first.

        With ``drain=False`` queued flights fail immediately with a
        retryable :class:`ServiceOverloadedError`.  Always releases the
        cache's storage-pool reservations and detaches the squeeze
        listener, so a stopped service leaves the context's memory
        accounting exactly as it found it.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            if not drain:
                aborted = list(self._queue)
                self._queue.clear()
            else:
                aborted = []
            self._work.notify_all()
        for flight in aborted:
            self._fail_flight(
                flight,
                ServiceOverloadedError(
                    "service stopped before this request ran",
                    queue_depth=0,
                    retry_after=None,
                ),
            )
        self._dispatcher.join(timeout=timeout)
        if self._dispatcher.is_alive():  # pragma: no cover — deadlock guard
            raise RuntimeError("service dispatcher failed to stop")
        if self.sc.memory_manager is not None:
            self.sc.memory_manager.remove_squeeze_listener(self.cache.on_squeeze)
        self.cache.clear()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- request-storm chaos driver ---------------------------------------


def run_request_storm(
    service: SolverService,
    make_request: Callable[[int, int], SolveRequest],
    *,
    clients: int = 16,
    requests_per_client: int = 2,
    plan=None,
    tight_deadline: float = 0.005,
    timeout: float = 120.0,
) -> list[dict[str, Any]]:
    """Drive ``clients`` concurrent threads through the service.

    ``make_request(client, seq)`` builds each base request; a
    ``request_storm`` fault plan may twist individual requests into a
    ``duplicate`` of the client's previous one (exercising
    single-flight/cache paths) or clamp on a ``tight_deadline``
    (exercising mid-flight cancellation), both decided by the seeded
    BLAKE2b contract so storms replay exactly.

    Returns one outcome dict per request: ``{"client", "seq", "twist",
    "ok", "response" | "error", "retryable"}``.  Raises if any client
    thread fails to finish within ``timeout`` — the storm's deadlock
    detector.
    """
    outcomes: list[list[dict[str, Any]]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients)

    def client_loop(client: int) -> None:
        barrier.wait(timeout=timeout)
        previous: SolveRequest | None = None
        for seq in range(requests_per_client):
            twist = plan.request_fault(client, seq) if plan is not None else None
            request = make_request(client, seq)
            if twist == "duplicate" and previous is not None:
                request = previous
            elif twist == "tight_deadline":
                request = replace(request, deadline=tight_deadline)
            previous = request
            record: dict[str, Any] = {
                "client": client,
                "seq": seq,
                "twist": twist,
                "fingerprint": request.fingerprint(),
            }
            try:
                record["response"] = service.solve(request, timeout=timeout)
                record["ok"] = True
            except BaseException as exc:  # noqa: BLE001 — recorded, asserted on
                record["ok"] = False
                record["error"] = exc
                record["retryable"] = is_retryable(exc)
            outcomes[client].append(record)

    threads = [
        threading.Thread(
            target=client_loop, args=(c,), name=f"storm-client-{c}", daemon=True
        )
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    stuck = [t.name for t in threads if t.is_alive()]
    if stuck:
        raise TimeoutError(f"request storm deadlocked; stuck clients: {stuck}")
    return [record for per_client in outcomes for record in per_client]


# -- Unix-socket serving (repro serve / repro request) -----------------

_LEN = struct.Struct(">Q")


def _send_msg(sock: socket.socket, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-message")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> Any:
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    return pickle.loads(_recv_exact(sock, length))


def _build_request(payload: dict[str, Any]) -> SolveRequest:
    """Materialize a wire payload into a SolveRequest.

    The wire format names a problem + generator seed rather than
    shipping the table, so identical payloads hash to identical
    fingerprints on the server and dedup/caching work across clients.
    """
    from .core.gep import (
        FloydWarshallGep,
        GaussianEliminationGep,
        TransitiveClosureGep,
    )
    from .core.dpspark import make_kernel
    from .workloads import diagonally_dominant, random_digraph_weights

    problem = payload["problem"]
    n = int(payload["n"])
    seed = int(payload.get("seed", 0))
    density = float(payload.get("density", 0.35))
    specs = {
        "apsp": FloydWarshallGep,
        "ge": GaussianEliminationGep,
        "tc": TransitiveClosureGep,
    }
    if problem not in specs:
        raise ValueError(f"unknown problem {problem!r}")
    spec = specs[problem]()
    if problem == "ge":
        table = diagonally_dominant(n, seed=seed)
    else:
        weights = random_digraph_weights(n, density, seed=seed)
        table = np.isfinite(weights) if problem == "tc" else weights
    table = table.astype(spec.dtype, copy=False)
    return SolveRequest(
        spec=spec,
        table=table,
        r=int(payload.get("r", 4)),
        kernel=make_kernel(spec, "iterative"),
        strategy=payload.get("strategy", "im"),
        deadline=payload.get("deadline"),
        client=payload.get("client", "socket"),
        request_id=payload.get("request_id"),
    )


def serve_forever(
    service: SolverService,
    socket_path: str,
    *,
    max_requests: int | None = None,
    ready: threading.Event | None = None,
) -> int:
    """Accept loop: one connection = one request = one reply.

    Replies are ``{"status": "ok", ...summary...}`` (plus the result
    array when the payload asks ``return_result``) or ``{"status":
    "error", "error": <pickled typed exception>, "retryable": bool}``.
    ``max_requests`` bounds the loop for tests; returns requests served.
    """
    if os.path.exists(socket_path):
        os.unlink(socket_path)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    served = 0
    handlers: list[threading.Thread] = []
    try:
        server.bind(socket_path)
        server.listen(16)
        if ready is not None:
            ready.set()
        while max_requests is None or served < max_requests:
            conn, _ = server.accept()
            served += 1
            t = threading.Thread(
                target=_handle_conn, args=(service, conn), daemon=True
            )
            t.start()
            handlers.append(t)
        # A bounded run must serve every accepted request before the
        # caller tears the service down under the last handler.
        for t in handlers:
            t.join()
        return served
    finally:
        server.close()
        if os.path.exists(socket_path):
            os.unlink(socket_path)


def _handle_conn(service: SolverService, conn: socket.socket) -> None:
    with conn:
        try:
            payload = _recv_msg(conn)
            if payload.get("op") == "stats":
                _send_msg(conn, {"status": "ok", **service.metrics.summary()})
                return
            request = _build_request(payload)
            response = service.solve(request, timeout=payload.get("timeout"))
            reply: dict[str, Any] = {
                "status": "ok",
                "fingerprint": response.fingerprint,
                "from_cache": response.from_cache,
                "coalesced": response.coalesced,
                "wall_seconds": response.wall_seconds,
                "result_checksum": _checksum(response.result),
            }
            if payload.get("return_result"):
                reply["result"] = response.result
            _send_msg(conn, reply)
        except BaseException as exc:  # noqa: BLE001 — shipped to the client
            try:
                _send_msg(
                    conn,
                    {
                        "status": "error",
                        "error": exc,
                        "retryable": is_retryable(exc),
                    },
                )
            except OSError:
                pass


def send_request(
    socket_path: str, payload: dict[str, Any], *, timeout: float = 120.0
) -> dict[str, Any]:
    """Send one request dict to a running service; returns the reply."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(socket_path)
        _send_msg(client, payload)
        return _recv_msg(client)
    finally:
        client.close()
