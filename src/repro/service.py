"""Solver-as-a-service: a hardened request plane over one SparkleContext.

:class:`SolverService` turns the batch GEP solver into a long-lived
service (DESIGN.md §15).  Concurrent clients call :meth:`SolverService.solve`
(or :meth:`~SolverService.submit` for a ticket); every request passes
through four defensive layers before an engine pass runs:

1. **Admission control** — a bounded request queue gated by
   :class:`~repro.sparkle.memory.MemoryManager` pressure.  ``critical``
   pressure sheds new work outright; ``pressured`` halves the queue
   bound; overflow raises a typed, retryable
   :class:`~repro.sparkle.errors.ServiceOverloadedError` instead of
   letting latency grow without bound.
2. **Single-flight dedup** — requests with the same solve fingerprint
   (:meth:`~repro.sparkle.requests.SolveRequest.fingerprint`, the same
   identity the resume journal uses) coalesce onto one engine pass, and
   completed results land in a checksummed LRU cache charged to the
   storage pool (squeezes evict it before it can go stale).
3. **Deadlines** — a per-request wall-clock budget covers queueing and
   the pass itself.  Mid-flight it propagates into the scheduler's
   stage/attempt boundaries (``set_job_deadline``) and the supervisor's
   per-kernel-call deadline, so an overrun SIGKILLs stuck workers and
   reaps their segments via the PR 5 crash protocol rather than leaking.
4. **Retry + circuit breaker** — transient engine faults are retried
   with bounded backoff; repeated :class:`~repro.sparkle.errors.WorkerCrashed`
   / :class:`~repro.sparkle.errors.PoisonTaskError` under the process
   backend trips a breaker that fails the data plane over to in-process
   threads (``disable_offload`` + the supervisor degrade latch), then
   half-opens a probe after a cooldown.
5. **Tenant isolation** (DESIGN.md §18) — requests carrying a tenant
   face per-tenant gates: token-bucket admission rate limits and byte
   quotas on the memory governor's tenant ledger (in-flight solve
   estimates plus cached-result bytes), refused with a typed retryable
   :class:`~repro.sparkle.errors.TenantQuotaExceededError`; the
   dispatcher queue is weighted deficit-round-robin across tenants, so
   a hog saturates only its own weight; and a deterministic
   :class:`~repro.sparkle.tenancy.BrownoutLadder` degrades gracefully
   under pressure — clamp ``pipeline_depth`` to 1, serve IM requests
   on the bit-identical CB strategy, then shed lowest-weight tenants
   with ``retry_after`` — with every transition metered clear-on-read.

Engine passes are **serialized** through one dispatcher thread:
concurrent passes over a shared context would interleave stage ids,
affinity resets, and metrics.  Concurrency lives entirely in the
request plane — which is exactly what the single-flight/caching layers
exploit.  Between passes :meth:`SparkleContext.reclaim_solve_state`
drops shuffle outputs, cached blocks, and shared-storage tiles so a
long-lived service does not accrete per-solve state.

The request plane itself is crash-proof (DESIGN.md §16): a
:class:`RequestJournal` fsync-appends every admission to a checksummed
WAL (keyed by client idempotency keys) and every settlement after it,
spooling completed results to a durable store — so ``repro serve
--resume`` replays exactly the in-flight set after a driver kill,
re-clamps deadlines to their remaining budget, rehydrates the result
cache, and serves reconnecting clients their original results without
re-running the engine.  SIGTERM/SIGINT trigger a graceful drain
(admission sheds with typed :class:`~repro.sparkle.errors.
ServiceDrainingError`, in-flight work settles, the journal is
checkpointed, the socket unlinked last), and :func:`send_request`
reconnects with jittered backoff reusing its idempotency key, so a
mid-response driver loss resolves to the same bytes after restart.

The module also ships :func:`run_request_storm` (the seeded chaos
driver for ``request_storm`` / ``driver_kill`` fault plans) and a
hardened Unix-socket server/client pair backing ``repro serve`` /
``repro request`` (frame-length caps, per-connection fault isolation,
stale-socket reclaim).
"""

from __future__ import annotations

import ast
import hashlib
import itertools
import os
import pickle
import signal
import socket
import struct
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .sparkle.chaos import deterministic_fraction
from .sparkle.durable import DurableBlockStore, SolveJournal
from .sparkle.errors import (
    BlockNotFoundError,
    CircuitOpenError,
    CorruptBlockError,
    ExecutorLost,
    FrameTooLargeError,
    JobAborted,
    PoisonTaskError,
    RequestDeadlineExceeded,
    ServiceDrainingError,
    ServiceOverloadedError,
    ShuffleFetchFailed,
    SparkleError,
    StorageCapacityError,
    TaskDeadlineExceeded,
    TaskKilled,
    TenantQuotaExceededError,
    TransientIOError,
    WorkerCrashed,
)
from .sparkle.memory import PRESSURE_CRITICAL, PRESSURE_OK
from .sparkle.metrics import ServiceMetrics
from .sparkle.requests import SolveRequest, SolveResponse
from .sparkle.tenancy import (
    BrownoutLadder,
    DeficitRoundRobin,
    TenantPolicy,
    TokenBucket,
)

__all__ = [
    "ServiceConfig",
    "SolveTicket",
    "ResultCache",
    "CircuitBreaker",
    "RequestJournal",
    "SolverService",
    "TenantPolicy",
    "run_request_storm",
    "run_noisy_neighbor_storm",
    "serve_forever",
    "send_request",
    "is_retryable",
]

#: Engine faults worth a service-level retry: the solve may succeed on a
#: fresh pass (respawned workers, recomputed lineage, relaxed pressure).
#: ``RequestDeadlineExceeded`` is deliberately absent — the budget is
#: spent, retrying cannot help.
SERVICE_RETRYABLE = (
    WorkerCrashed,
    PoisonTaskError,
    TaskDeadlineExceeded,
    TaskKilled,
    ExecutorLost,
    TransientIOError,
    ShuffleFetchFailed,
    BlockNotFoundError,
    StorageCapacityError,
    JobAborted,
)

#: Faults that indict the *process backend* specifically and count
#: toward tripping the circuit breaker.
_BREAKER_FAULTS = (WorkerCrashed, PoisonTaskError)


def is_retryable(exc: BaseException) -> bool:
    """Should a client resubmit after this failure?

    Overload sheds and open-circuit rejections are retryable by
    definition (they carry ``retry_after`` hints); engine faults follow
    :data:`SERVICE_RETRYABLE`.  Deadline overruns are not retryable —
    the same budget will be exceeded again.
    """
    if isinstance(exc, (ServiceOverloadedError, CircuitOpenError)):
        return True
    if isinstance(exc, ServiceDrainingError):
        # The drain always precedes a restart (or a peer): retry there.
        return True
    if isinstance(exc, TenantQuotaExceededError):
        # The tenant's own in-flight work (or token bucket) will drain;
        # ``retry_after`` says when to come back.
        return True
    if isinstance(exc, RequestDeadlineExceeded):
        return False
    return isinstance(exc, SERVICE_RETRYABLE)


def _breaker_fault(exc: BaseException) -> bool:
    """Does this failure count against the process backend's breaker?

    The scheduler wraps exhausted retries as ``JobAborted(...) from
    last_exc``, so the real fault rides in ``__cause__``.
    """
    if isinstance(exc, _BREAKER_FAULTS):
        return True
    if isinstance(exc, JobAborted) and exc.__cause__ is not None:
        return isinstance(exc.__cause__, _BREAKER_FAULTS)
    return False


@dataclass
class ServiceConfig:
    """Tunables for the request plane.

    Parameters
    ----------
    max_queue_depth:
        Flights (deduplicated solves) allowed to wait behind the
        dispatcher under ``ok`` pressure; halved (floor 1) under
        ``pressured``, zero effective admission under ``critical``.
    cache_entries:
        LRU result-cache capacity in entries; bytes are additionally
        bounded by the storage pool (reservations fail → evict).
    retries:
        Engine passes retried per flight after a retryable fault.
    retry_backoff_base / retry_backoff_cap:
        Bounded exponential backoff between passes:
        ``min(base · 2^(attempt-1), cap)`` seconds.
    breaker_threshold:
        Consecutive breaker-countable faults (worker crashes / poison
        quarantines) before the circuit opens and passes fail over to
        the thread path.
    breaker_cooldown:
        Seconds an open circuit waits before half-opening one probe
        pass back onto the process backend.
    shed_retry_after:
        ``retry_after`` hint attached to overload sheds, seconds.
    default_deadline:
        Applied to requests that carry none (``None`` = unlimited).
    max_frame_bytes:
        Socket frames announcing more than this many payload bytes are
        refused with :class:`FrameTooLargeError` before any payload is
        read (allocation-bomb guard).
    drain_retry_after:
        ``retry_after`` hint attached to :class:`ServiceDrainingError`
        sheds — how long a client should wait before retrying against
        the restarted instance.
    tenant_policies:
        ``tenant -> TenantPolicy`` isolation knobs (DESIGN.md §18):
        DRR weight, byte quota on the governor's tenant ledger, and
        token-bucket admission rate.  Tenants absent from the map get
        ``default_tenant_weight``, no quota, and no rate limit.
    default_tenant_weight:
        DRR weight for tenants without a policy (and for anonymous
        requests, which all share the ``None`` tenant queue).
    tenant_charge_factor:
        In-flight quota charge per admitted flight, as a multiple of
        the request table's bytes.  Defaults to 3 — the IM strategy's
        worst case of three simultaneously materialized table copies
        (the paper's §IV-C working-set bound) — so the quota prices
        peak engine footprint, not just the input.
    brownout:
        Arm the :class:`~repro.sparkle.tenancy.BrownoutLadder`
        (clamp → degrade → shed under pressure); off leaves only the
        PR 7 admission gates.
    """

    max_queue_depth: int = 16
    cache_entries: int = 32
    retries: int = 2
    retry_backoff_base: float = 0.02
    retry_backoff_cap: float = 0.25
    breaker_threshold: int = 3
    breaker_cooldown: float = 2.0
    shed_retry_after: float = 0.25
    default_deadline: float | None = None
    max_frame_bytes: int = 256 * 1024 * 1024
    drain_retry_after: float = 1.0
    tenant_policies: dict[str, TenantPolicy] = field(default_factory=dict)
    default_tenant_weight: int = 1
    tenant_charge_factor: int = 3
    brownout: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.max_frame_bytes < 4096:
            raise ValueError("max_frame_bytes must be >= 4096")
        if self.default_tenant_weight < 1:
            raise ValueError("default_tenant_weight must be >= 1")
        if self.tenant_charge_factor < 1:
            raise ValueError("tenant_charge_factor must be >= 1")


class SolveTicket:
    """A claim on one admitted request; ``result()`` blocks for it.

    Tickets settle exactly once (completed / failed / deadline), no
    matter how many parties race — the flight finishing, the waiter's
    own deadline firing, service shutdown — so per-request metrics are
    counted exactly once too.
    """

    def __init__(
        self,
        service: "SolverService",
        request: SolveRequest,
        fingerprint: str,
        deadline_at: float | None,
    ) -> None:
        self._service = service
        self.request = request
        self.fingerprint = fingerprint
        #: absolute ``time.monotonic()`` deadline (None = unbounded)
        self.deadline_at = deadline_at
        self.coalesced = False
        self.from_cache = False
        #: WAL key this admission was journaled under (None = unjournaled
        #: path: cache hit, idempotent replay, or journal-less service)
        self.journal_key: str | None = None
        self._t0 = time.monotonic()
        self._event = threading.Event()
        self._settle_lock = threading.Lock()
        self._outcome: str | None = None
        self._response: SolveResponse | None = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def outcome(self) -> str | None:
        """Terminal state label once settled (DESIGN.md §15)."""
        return self._outcome

    def _settle(self, outcome: str) -> bool:
        """Claim the terminal state; True for the first caller only."""
        with self._settle_lock:
            if self._outcome is not None:
                return False
            self._outcome = outcome
            return True

    def _fulfill(self, result: np.ndarray, *, from_cache: bool = False) -> None:
        if not self._settle("completed"):
            return
        self.from_cache = from_cache
        self._response = SolveResponse(
            result=result,
            fingerprint=self.fingerprint,
            request_id=self.request.request_id,
            from_cache=from_cache,
            coalesced=self.coalesced,
            wall_seconds=time.monotonic() - self._t0,
        )
        # Durable settle *before* waking the waiter: once a client has
        # seen a reply, a crash-and-resume must never re-run the work.
        self._service._journal_settle(self, "completed", result=result)
        m = self._service.metrics
        with self._service._metrics_lock:
            m.requests_completed += 1
            m.tenant_event(self.request.tenant, "completed")
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        deadline = isinstance(exc, RequestDeadlineExceeded)
        outcome = "deadline-cancelled" if deadline else "failed"
        if not self._settle(outcome):
            return
        self._error = exc
        self._service._journal_settle(self, outcome, error=exc)
        m = self._service.metrics
        with self._service._metrics_lock:
            if deadline:
                m.deadline_cancelled += 1
            else:
                m.requests_failed += 1
        self._event.set()

    def result(self, timeout: float | None = None) -> SolveResponse:
        """Block for the response; raises the typed failure on error.

        A waiter whose own deadline passes while the (possibly
        coalesced) flight is still running raises
        :class:`RequestDeadlineExceeded` — other waiters on the same
        flight with looser deadlines are unaffected.
        """
        timeout_at = None if timeout is None else time.monotonic() + timeout
        while not self._event.is_set():
            now = time.monotonic()
            if self.deadline_at is not None and now >= self.deadline_at:
                self._fail(
                    RequestDeadlineExceeded(
                        "request deadline expired while waiting for the flight",
                        deadline=self.request.deadline,
                        elapsed=now - self._t0,
                    )
                )
                break
            if timeout_at is not None and now >= timeout_at:
                raise TimeoutError(
                    f"no response within {timeout:.3f}s (request still in flight)"
                )
            wake_at = [t for t in (self.deadline_at, timeout_at) if t is not None]
            self._event.wait(min(wake_at) - now if wake_at else None)
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class _Flight:
    """One deduplicated engine pass plus everyone waiting on it."""

    __slots__ = ("fingerprint", "waiters", "done", "tenant", "charge")

    def __init__(self, fingerprint: str, tenant: str | None = None) -> None:
        self.fingerprint = fingerprint
        self.waiters: list[SolveTicket] = []
        self.done = False
        #: tenant of the *admitting* ticket — the DRR queue key and the
        #: party the in-flight quota charge is attributed to (coalesced
        #: waiters ride free: the flight is the unit of work)
        self.tenant = tenant
        #: bytes charged to the tenant ledger for this flight's lifetime
        self.charge = 0

    def deadline_at(self) -> float | None:
        """The pass runs to the *loosest* waiter's deadline.

        Tighter waiters time out individually in ``result()``; only
        when every waiter has a deadline may the engine pass itself be
        cancelled (max of the absolute deadlines).
        """
        worst: float | None = None
        for t in self.waiters:
            if t.deadline_at is None:
                return None
            worst = t.deadline_at if worst is None else max(worst, t.deadline_at)
        return worst


class _CacheEntry:
    __slots__ = ("array", "checksum", "nbytes", "tenant")

    def __init__(
        self, array: np.ndarray, checksum: str, tenant: str | None = None
    ) -> None:
        self.array = array
        self.checksum = checksum
        self.nbytes = int(array.nbytes)
        #: tenant whose quota ledger carries this entry's bytes (None =
        #: anonymous or rehydrated-from-spool: storage-charged only)
        self.tenant = tenant


def _checksum(array: np.ndarray) -> str:
    return hashlib.blake2b(
        np.ascontiguousarray(array).tobytes(), digest_size=16
    ).hexdigest()


class ResultCache:
    """Checksummed LRU of solve results, charged to the storage pool.

    Every hit re-verifies the entry's BLAKE2b checksum — a corrupted or
    partially-evicted buffer is dropped and treated as a miss rather
    than served.  Bytes are reserved from the MemoryManager's
    ``storage`` pool; when a reservation fails the LRU tail is evicted
    until it fits (or the entry is simply not cached).  A budget
    squeeze invalidates entries until pressure clears, so the cache
    never pins memory the engine needs.
    """

    OWNER = "service-cache"

    def __init__(self, max_entries: int, memory, metrics: ServiceMetrics) -> None:
        self.max_entries = max_entries
        self._memory = memory
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def get(self, fingerprint: str) -> np.ndarray | None:
        """A verified copy of the cached result, or None."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._metrics.cache_misses += 1
                return None
            if _checksum(entry.array) != entry.checksum:
                self._metrics.cache_integrity_failures += 1
                self._drop_locked(fingerprint)
                self._metrics.cache_misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._metrics.cache_hits += 1
            # Callers get a private copy; the cached buffer never escapes.
            return entry.array.copy()

    def put(
        self, fingerprint: str, result: np.ndarray, *, tenant: str | None = None
    ) -> bool:
        """Cache a fresh result; False if it could not be admitted.

        When the owning tenant has a quota, the entry's bytes are also
        attributed to its tenant ledger — and a quota breach simply
        *skips caching* (the solve already succeeded; the tenant just
        loses the cache privilege).  It never evicts another tenant's
        entries to make room inside someone else's quota.
        """
        if self.max_entries == 0:
            return False
        array = np.ascontiguousarray(result).copy()
        entry = _CacheEntry(array, _checksum(array), tenant)
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                return True
            while len(self._entries) >= self.max_entries:
                self._evict_lru_locked()
            while not self._reserve(entry.nbytes):
                if not self._entries:
                    return False
                self._evict_lru_locked()
            if (
                tenant is not None
                and self._memory is not None
                and not self._memory.charge_tenant(tenant, entry.nbytes)
            ):
                self._memory.release("storage", self.OWNER, entry.nbytes)
                return False
            self._entries[fingerprint] = entry
            return True

    def invalidate(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint not in self._entries:
                return False
            self._drop_locked(fingerprint)
            self._metrics.cache_invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            for fp in list(self._entries):
                self._drop_locked(fp)

    def on_squeeze(self, new_budget: int) -> None:
        """Squeeze listener: shed entries until pressure clears.

        Runs outside the MemoryManager's lock (see ``squeeze``), so the
        ``release`` calls inside ``_drop_locked`` cannot deadlock.
        """
        with self._lock:
            while self._entries and self._memory is not None:
                if self._memory.pressure() == PRESSURE_OK:
                    break
                self._drop_locked(next(iter(self._entries)))
                self._metrics.cache_invalidations += 1

    def _reserve(self, nbytes: int) -> bool:
        if self._memory is None:
            return True
        return self._memory.reserve("storage", self.OWNER, nbytes)

    def _evict_lru_locked(self) -> None:
        self._drop_locked(next(iter(self._entries)))
        self._metrics.cache_evictions += 1

    def _drop_locked(self, fingerprint: str) -> None:
        entry = self._entries.pop(fingerprint)
        if self._memory is not None:
            self._memory.release("storage", self.OWNER, entry.nbytes)
            if entry.tenant is not None:
                self._memory.release_tenant(entry.tenant, entry.nbytes)


class CircuitBreaker:
    """Closed → open → half-open breaker over the process backend.

    ``breaker_threshold`` consecutive worker-crash/poison faults open
    the circuit: subsequent passes run with offload disabled (the
    thread path — bit-identical, just slower), and the supervisor's
    degrade latch is forced so the solver's own ``degrade_on_crash``
    machinery agrees.  After ``cooldown`` seconds one probe pass
    half-opens back onto processes; success closes the circuit,
    another fault reopens it.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int, cooldown: float, metrics: ServiceMetrics) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._metrics = metrics
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self.failures = 0
        self._opened_at = 0.0

    def allow_offload(self) -> bool:
        """May the next pass use the process backend?"""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.HALF_OPEN:
                # A probe is already in flight; stay on the safe path.
                return False
            if time.monotonic() - self._opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                self._metrics.circuit_half_opens += 1
                return True
            return False

    def record_success(self, *, offloaded: bool) -> None:
        with self._lock:
            if not offloaded:
                return
            if self.state == self.HALF_OPEN:
                self.state = self.CLOSED
                self._metrics.circuit_closes += 1
            self.failures = 0

    def record_failure(self, *, offloaded: bool) -> None:
        with self._lock:
            if not offloaded:
                return
            self.failures += 1
            if self.state == self.HALF_OPEN or self.failures >= self.threshold:
                if self.state != self.OPEN:
                    self._metrics.circuit_trips += 1
                self.state = self.OPEN
                self._opened_at = time.monotonic()
                self.failures = 0

    def retry_after(self) -> float:
        with self._lock:
            if self.state != self.OPEN:
                return 0.0
            return max(0.0, self.cooldown - (time.monotonic() - self._opened_at))


class RequestJournal:
    """Durable WAL of admitted requests plus a spooled-result store.

    The survivability layer of DESIGN.md §16.  Two on-disk pieces under
    one directory, both built from the PR 2 durability idioms:

    ``requests.wal``
        A :class:`~repro.sparkle.durable.SolveJournal` (checksummed
        JSONL, contiguous seq numbers, torn-tail truncation on open).
        Every admission is fsync-appended *before* the client's ticket
        is returned (``kind=admitted``: idempotency key, fingerprint,
        the replayable wire payload, deadline, wall-clock admission
        time); every settlement appends ``kind=settled`` *before* the
        waiter wakes.  The set "admitted keys whose latest record is
        not a settle" is therefore exactly the in-flight set at any
        crash point — which is what ``--resume`` replays.

    ``results/``
        A bounded :class:`~repro.sparkle.durable.DurableBlockStore`
        spool of completed results keyed by solve fingerprint, written
        *before* the settle record (the record is the commit point, the
        PR 2 snapshot-then-journal protocol).  Resume rehydrates the
        in-memory :class:`ResultCache` from it, and reconnecting
        clients replaying an idempotency key are served from it with no
        engine pass.

    Thread-safe; an instance may be shared by the admission path, the
    dispatcher's settles, and a concurrent ``--stats`` reader.  Counters
    land in the owning service's :class:`ServiceMetrics` once
    :meth:`bind_metrics` attaches them.
    """

    WAL_FILENAME = "requests.wal"
    SPOOL_DIR = "results"

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        spool_entries: int = 32,
    ) -> None:
        if spool_entries < 0:
            raise ValueError("spool_entries must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal = SolveJournal(self.root, filename=self.WAL_FILENAME)
        self.spool = DurableBlockStore(self.root / self.SPOOL_DIR)
        self.spool_entries = spool_entries
        self._lock = threading.Lock()
        self._metrics: ServiceMetrics | None = None
        self._metrics_lock: threading.Lock | None = None
        #: latest WAL record per idempotency key — "admitted" means
        #: in-flight, "settled" means done (and maybe serviceable)
        self._state: dict[str, dict] = {}
        #: completed-result fingerprints in (approximate) insertion
        #: order; the spool's pruning queue
        self._spool_index: "OrderedDict[str, None]" = OrderedDict()
        self.torn_records = 0
        self._load()

    def _load(self) -> None:
        raw = self.wal.verify()
        self.torn_records = raw["records_total"] - raw["records_valid"]
        for entry in self.wal.truncate_to_valid():
            key = entry.get("key")
            if key is not None:
                self._state[key] = entry
        for key_repr in self.spool.keys():
            try:
                fingerprint = ast.literal_eval(key_repr)
            except (ValueError, SyntaxError):  # pragma: no cover — foreign key
                continue
            self._spool_index[fingerprint] = None

    def bind_metrics(self, metrics: ServiceMetrics, lock: threading.Lock) -> None:
        self._metrics = metrics
        self._metrics_lock = lock
        with lock:
            metrics.journal_torn_records += self.torn_records

    def _count(self, counter: str, amount: int = 1) -> None:
        if self._metrics is None or self._metrics_lock is None:
            return
        with self._metrics_lock:
            setattr(
                self._metrics, counter, getattr(self._metrics, counter) + amount
            )

    # -- write path ----------------------------------------------------

    def admit(
        self,
        key: str,
        fingerprint: str,
        payload: dict[str, Any],
        *,
        deadline: float | None = None,
        tenant: str | None = None,
        admitted_unix: float | None = None,
    ) -> dict:
        """Fsync-append one admission; returns the sealed WAL entry.

        ``payload`` must be the JSON-safe *wire* form of the request
        (what :func:`_build_request` consumes) so a restarted process
        can rebuild and re-run it.  ``admitted_unix`` records wall-clock
        admission time — resume re-clamps the deadline to the remaining
        budget against it (monotonic clocks do not survive a restart).
        """
        record = {
            "kind": "admitted",
            "key": key,
            "fingerprint": fingerprint,
            "payload": dict(payload),
            "deadline": deadline,
            "tenant": tenant,
            "admitted_unix": time.time() if admitted_unix is None else admitted_unix,
        }
        with self._lock:
            entry = self.wal.append(record)
            self._state[key] = entry
        self._count("journal_admits")
        return entry

    def settle(
        self,
        key: str,
        outcome: str,
        *,
        fingerprint: str | None = None,
        result: np.ndarray | None = None,
        error: BaseException | None = None,
    ) -> bool:
        """Durably settle ``key``; False if it already settled (dedup).

        A completed result is spooled first (keyed by fingerprint, so
        coalesced keys share one block), then the settle record commits
        it — a crash between the two leaves an unreferenced spool block
        that compaction prunes, never a settle without its result.
        """
        record: dict[str, Any] = {
            "kind": "settled",
            "key": key,
            "outcome": outcome,
            "fingerprint": fingerprint,
        }
        with self._lock:
            state = self._state.get(key)
            if state is not None and state.get("kind") == "settled":
                return False
            if result is not None and fingerprint is not None:
                self._spool_put_locked(fingerprint, result)
                record["result_check"] = _checksum(result)
            if error is not None:
                record["error_type"] = type(error).__name__
                record["error_message"] = str(error)
            entry = self.wal.append(record)
            self._state[key] = entry
        self._count("journal_settles")
        return True

    def _spool_put_locked(self, fingerprint: str, result: np.ndarray) -> None:
        if self.spool_entries == 0:
            return
        if fingerprint not in self._spool_index:
            self.spool.put(fingerprint, np.ascontiguousarray(result))
            self._spool_index[fingerprint] = None
        else:
            self._spool_index.move_to_end(fingerprint)
        while len(self._spool_index) > self.spool_entries:
            evicted, _ = self._spool_index.popitem(last=False)
            self.spool.delete(evicted)

    # -- read path -----------------------------------------------------

    def is_inflight(self, key: str) -> bool:
        with self._lock:
            state = self._state.get(key)
            return state is not None and state.get("kind") == "admitted"

    def settled_lookup(self, key: str) -> dict | None:
        """The settle record for ``key``, or None if unsettled/unknown."""
        with self._lock:
            state = self._state.get(key)
            if state is not None and state.get("kind") == "settled":
                return dict(state)
            return None

    def settled_result(self, record: dict) -> np.ndarray | None:
        """The spooled result a settle record committed, verified.

        None when the spool pruned it (capacity) or the bytes fail the
        settle record's checksum — callers fall through to a fresh
        engine pass rather than serve doubtful bytes.
        """
        fingerprint = record.get("fingerprint")
        if fingerprint is None:
            return None
        try:
            array = self.spool.get(fingerprint)
        except (BlockNotFoundError, CorruptBlockError):
            return None
        expected = record.get("result_check")
        if expected is not None and _checksum(array) != expected:
            return None
        return array

    def incomplete(self) -> list[dict]:
        """Admitted-but-unsettled records, in admission (seq) order."""
        with self._lock:
            records = [
                dict(rec)
                for rec in self._state.values()
                if rec.get("kind") == "admitted"
            ]
        return sorted(records, key=lambda r: r.get("seq", 0))

    def spooled(self) -> list[tuple[str, np.ndarray]]:
        """Every readable ``(fingerprint, result)`` in the spool."""
        with self._lock:
            fingerprints = list(self._spool_index)
        out: list[tuple[str, np.ndarray]] = []
        for fingerprint in fingerprints:
            try:
                out.append((fingerprint, self.spool.get(fingerprint)))
            except (BlockNotFoundError, CorruptBlockError):
                continue
        return out

    # -- maintenance ---------------------------------------------------

    def compact(self) -> int:
        """Checkpoint the WAL; returns the number of records dropped.

        Keeps exactly (a) in-flight admissions — the records a resume
        must replay — and (b) completed settles whose result is still
        spooled — the records that serve reconnecting clients.  History
        behind those (settled work past spool capacity, failed/cancelled
        settles, superseded admissions of re-used keys) is dropped, and
        spool blocks no kept record references are pruned, so the
        journal directory stays bounded no matter how long the service
        runs.  The rewrite is one atomic rename (see
        :meth:`SolveJournal.rewrite`).
        """
        with self._lock:
            keep: list[dict] = []
            kept_fingerprints: set[str] = set()
            for key, rec in self._state.items():
                if rec.get("kind") == "admitted":
                    keep.append(rec)
                elif (
                    rec.get("outcome") == "completed"
                    and rec.get("fingerprint") in self._spool_index
                ):
                    keep.append(rec)
                    kept_fingerprints.add(rec["fingerprint"])
            keep.sort(key=lambda r: r.get("seq", 0))
            total = len(self.wal.entries())
            dropped = total - len(keep)
            sealed = self.wal.rewrite(keep)
            self._state = {e["key"]: e for e in sealed}
            for fingerprint in list(self._spool_index):
                if fingerprint not in kept_fingerprints:
                    del self._spool_index[fingerprint]
                    self.spool.delete(fingerprint)
        self._count("journal_compactions")
        self._count("journal_records_compacted", dropped)
        return dropped


class SolverService:
    """Long-lived request plane over one shared :class:`SparkleContext`.

    Thread-safe: any number of client threads may call
    :meth:`submit`/:meth:`solve` concurrently.  Engine passes run one
    at a time on the internal dispatcher thread (see module docstring
    for why), with admission, dedup, caching, deadlines, retry, and the
    circuit breaker layered in front.
    """

    def __init__(
        self,
        sc,
        *,
        config: ServiceConfig | None = None,
        journal: RequestJournal | None = None,
    ) -> None:
        self.sc = sc
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self._metrics_lock = threading.Lock()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._policies: dict[str, TenantPolicy] = dict(
            self.config.tenant_policies
        )
        self._buckets: dict[str, TokenBucket] = {}
        self._queue = DeficitRoundRobin(weight_of=self._weight)
        self.ladder = BrownoutLadder(self.config.max_queue_depth)
        self._inflight: dict[str, _Flight] = {}
        self._running: _Flight | None = None
        self._stopped = False
        self._draining = False
        self._journal = journal
        self._auto_keys = itertools.count()
        if journal is not None:
            journal.bind_metrics(self.metrics, self._metrics_lock)
        quota_tenants = sorted(
            tenant
            for tenant, policy in self._policies.items()
            if policy.quota_bytes is not None
        )
        if sc.memory_manager is not None:
            for tenant in quota_tenants:
                sc.memory_manager.set_tenant_quota(
                    tenant, self._policies[tenant].quota_bytes
                )
        elif quota_tenants:
            raise ValueError(
                "tenant quotas are attributed through the memory governor; "
                f"quotas for {quota_tenants} require a context built with "
                "memory_budget_bytes"
            )
        self.cache = ResultCache(
            self.config.cache_entries, sc.memory_manager, self.metrics
        )
        if sc.memory_manager is not None:
            sc.memory_manager.add_squeeze_listener(self.cache.on_squeeze)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown,
            self.metrics,
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="solver-service", daemon=True
        )
        self._dispatcher.start()

    # -- client surface ------------------------------------------------

    def solve(
        self,
        request: SolveRequest,
        timeout: float | None = None,
        *,
        wire: dict[str, Any] | None = None,
    ) -> SolveResponse:
        """Admit, run (or coalesce/serve from cache), and wait."""
        return self.submit(request, wire=wire).result(timeout)

    def submit(
        self,
        request: SolveRequest,
        *,
        wire: dict[str, Any] | None = None,
        _replay: bool = False,
    ) -> SolveTicket:
        """Admit a request; returns immediately with a ticket.

        Raises :class:`ServiceOverloadedError` when admission control
        sheds the request (critical memory pressure, or the bounded
        queue is full) and :class:`ServiceDrainingError` once the
        service is draining for shutdown.  Cache hits and coalesced
        requests bypass admission — they cost no engine pass, so
        shedding them would only waste work already done.

        ``wire`` is the JSON-safe payload a restarted process could
        rebuild this request from; when the service has a
        :class:`RequestJournal` attached, admissions carrying one are
        fsync-journaled before the ticket is returned.  A request whose
        idempotency key the journal has already *settled* (a client
        reconnecting across a restart) is served the original result
        directly from the durable spool — no admission, no engine pass.
        ``_replay`` marks resume-driven re-submissions, which are
        already in the WAL and must not be re-appended.
        """
        if request.deadline is None and self.config.default_deadline is not None:
            request = replace(request, deadline=self.config.default_deadline)
        fingerprint = request.fingerprint()
        deadline_at = (
            time.monotonic() + request.deadline
            if request.deadline is not None
            else None
        )
        cached: np.ndarray | None = None
        with self._lock:
            if self._stopped:
                raise RuntimeError("SolverService is stopped")
            with self._metrics_lock:
                self.metrics.requests_received += 1
                self.metrics.tenant_event(request.tenant, "requests")
            if self._draining:
                with self._metrics_lock:
                    self.metrics.requests_shed += 1
                    self.metrics.draining_sheds += 1
                    self.metrics.tenant_event(request.tenant, "sheds")
                raise ServiceDrainingError(
                    "service is draining for shutdown; retry against the "
                    "restarted instance",
                    retry_after=self.config.drain_retry_after,
                )
            replayed = self._settled_replay_locked(request, fingerprint, deadline_at)
            if replayed is not None:
                return replayed
            cached = self.cache.get(fingerprint)
            if cached is not None:
                with self._metrics_lock:
                    self.metrics.requests_admitted += 1
                    self.metrics.tenant_event(request.tenant, "cache_hits")
                ticket = SolveTicket(self, request, fingerprint, deadline_at)
                key = request.idempotency_key
                if _replay or (
                    key is not None
                    and self._journal is not None
                    and self._journal.is_inflight(key)
                ):
                    # The WAL already names this key in-flight (a resume
                    # replay, or a keyed retry racing one): attach the
                    # key so the cache-served fulfilment durably settles
                    # it — otherwise the admission replays forever.
                    ticket.journal_key = self._journal_admit(
                        request, fingerprint, wire, _replay
                    )
                ticket._fulfill(cached, from_cache=True)
                return ticket
            flight = self._inflight.get(fingerprint)
            if flight is not None and not flight.done:
                with self._metrics_lock:
                    self.metrics.requests_admitted += 1
                    self.metrics.single_flight_coalesced += 1
                ticket = SolveTicket(self, request, fingerprint, deadline_at)
                ticket.coalesced = True
                ticket.journal_key = self._journal_admit(
                    request, fingerprint, wire, _replay
                )
                flight.waiters.append(ticket)
                return ticket
            # Only requests that would create a NEW flight (a real
            # engine pass) face the isolation gates below — cache hits
            # and coalesces above cost nothing extra, and replays are
            # journaled work the WAL already committed to running.
            self._evaluate_brownout_locked()
            if not _replay:
                self._rate_gate_locked(request.tenant)
                self._brownout_gate_locked(request.tenant)
            charge = self._charge_tenant_locked(request, force=_replay)
            try:
                self._admit_locked(fingerprint)
            except ServiceOverloadedError:
                self._release_tenant_charge(request.tenant, charge)
                with self._metrics_lock:
                    self.metrics.tenant_event(request.tenant, "sheds")
                raise
            ticket = SolveTicket(self, request, fingerprint, deadline_at)
            ticket.journal_key = self._journal_admit(
                request, fingerprint, wire, _replay
            )
            flight = _Flight(fingerprint, tenant=request.tenant)
            flight.charge = charge
            flight.waiters.append(ticket)
            self._inflight[fingerprint] = flight
            self._queue.push(flight.tenant, flight)
            self._work.notify_all()
            return ticket

    def _settled_replay_locked(
        self,
        request: SolveRequest,
        fingerprint: str,
        deadline_at: float | None,
    ) -> SolveTicket | None:
        """Serve a journal-settled idempotency key, or None to admit.

        Only *completed* settles short-circuit: a key that settled as
        failed or deadline-cancelled is a legitimate retry target, so it
        falls through to a fresh admission (which supersedes the old
        settle in the journal's per-key state).
        """
        key = request.idempotency_key
        if key is None or self._journal is None:
            return None
        settled = self._journal.settled_lookup(key)
        if settled is None or settled.get("outcome") != "completed":
            return None
        result = self._journal.settled_result(settled)
        if result is None:
            return None  # spool pruned/corrupt: run it again
        with self._metrics_lock:
            self.metrics.requests_admitted += 1
            self.metrics.idempotent_replays += 1
            self.metrics.tenant_event(request.tenant, "cache_hits")
        ticket = SolveTicket(
            self, request, settled.get("fingerprint") or fingerprint, deadline_at
        )
        ticket._fulfill(result, from_cache=True)
        return ticket

    def _journal_admit(
        self,
        request: SolveRequest,
        fingerprint: str,
        wire: dict[str, Any] | None,
        replayed: bool,
    ) -> str | None:
        """Append one admission to the WAL; returns its key (or None).

        Admissions without a wire payload are not journaled — a crash
        could not replay them anyway (in-process requests carry live
        spec/kernel/table objects).  Keys already named in-flight by the
        WAL are not re-appended: that is a resume replay, or a client
        retrying across a restart racing the replay — either way the
        admission is already durable and the fingerprint single-flight
        above coalesces the work.
        """
        if self._journal is None or wire is None:
            return None
        key = request.idempotency_key
        if key is None:
            # Server-generated key: journaled crash recovery still works
            # (replay is keyed by the record, not the client), clients
            # just cannot reclaim the settle without the key.
            key = f"auto:{fingerprint[:16]}:{next(self._auto_keys)}"
        if replayed or self._journal.is_inflight(key):
            if not replayed:
                with self._metrics_lock:
                    self.metrics.resume_coalesced += 1
            return key
        payload = dict(wire)
        payload["idempotency_key"] = key
        self._journal.admit(
            key,
            fingerprint,
            payload,
            deadline=request.deadline,
            tenant=request.tenant,
        )
        return key

    def _journal_settle(
        self,
        ticket: SolveTicket,
        outcome: str,
        *,
        result: np.ndarray | None = None,
        error: BaseException | None = None,
    ) -> None:
        if self._journal is None or ticket.journal_key is None:
            return
        self._journal.settle(
            ticket.journal_key,
            outcome,
            fingerprint=ticket.fingerprint,
            result=result,
            error=error,
        )

    # -- tenant isolation gates (DESIGN.md §18) ------------------------

    def _policy(self, tenant: str | None) -> TenantPolicy | None:
        return self._policies.get(tenant) if tenant is not None else None

    def _weight(self, tenant: str | None) -> int:
        policy = self._policy(tenant)
        return (
            policy.weight
            if policy is not None
            else self.config.default_tenant_weight
        )

    def _rate_gate_locked(self, tenant: str | None) -> None:
        """Token-bucket admission rate limit (per-tenant, opt-in)."""
        policy = self._policy(tenant)
        if policy is None or policy.rate is None:
            return
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                policy.rate, policy.burst
            )
        if bucket.try_take():
            return
        with self._metrics_lock:
            self.metrics.rate_limited += 1
            self.metrics.tenant_event(tenant, "rate_limited")
        raise TenantQuotaExceededError(
            f"tenant {tenant!r} is over its admission rate "
            f"({policy.rate:g} req/s, burst {policy.burst})",
            tenant=tenant,
            retry_after=max(bucket.retry_after(), 0.001),
        )

    def _brownout_gate_locked(self, tenant: str | None) -> None:
        """At the ladder's ``shed`` rung, refuse lowest-weight tenants.

        "Lowest" is relative to the tenants currently holding queued
        work: a request is shed only when some *heavier* tenant is
        waiting (equal weights shed nobody here — the plain admission
        gates still apply to everyone).
        """
        if not self.config.brownout or self.ladder.level < 3:
            return
        weight = self._weight(tenant)
        contenders = set(self._queue.tenants()) | {tenant}
        if weight >= max(self._weight(t) for t in contenders):
            return
        with self._metrics_lock:
            self.metrics.requests_shed += 1
            self.metrics.brownout_sheds += 1
            self.metrics.tenant_event(tenant, "sheds")
        raise ServiceOverloadedError(
            f"brownout shed: tenant {tenant!r} (weight {weight}) yields "
            f"to heavier queued tenants",
            level="brownout",
            queue_depth=len(self._queue),
            retry_after=self.config.shed_retry_after,
        )

    def _charge_tenant_locked(
        self, request: SolveRequest, *, force: bool = False
    ) -> int:
        """Reserve the flight's in-flight quota estimate; returns bytes.

        The estimate is ``table.nbytes × tenant_charge_factor`` (see
        :class:`ServiceConfig`).  A breach raises the typed retryable
        error at *this* tenant and touches nobody else's state.
        ``force`` is the resume path: replayed admissions were already
        accepted once, so they charge unconditionally.
        """
        tenant = request.tenant
        mm = self.sc.memory_manager
        if tenant is None or mm is None:
            return 0
        charge = int(request.table.nbytes) * self.config.tenant_charge_factor
        if mm.charge_tenant(tenant, charge, force=force):
            return charge
        usage = mm.tenant_usage().get(tenant, {})
        with self._metrics_lock:
            self.metrics.quota_rejections += 1
            self.metrics.tenant_event(tenant, "quota_rejections")
        raise TenantQuotaExceededError(
            f"tenant {tenant!r} quota exceeded: holds "
            f"{usage.get('held_bytes', 0)} of {usage.get('quota_bytes')} "
            f"bytes; this flight needs {charge} more",
            tenant=tenant,
            used_bytes=usage.get("held_bytes", 0),
            quota_bytes=usage.get("quota_bytes"),
            retry_after=self.config.shed_retry_after,
        )

    def _release_tenant_charge(self, tenant: str | None, charge: int) -> None:
        if tenant is None or charge == 0:
            return
        if self.sc.memory_manager is not None:
            self.sc.memory_manager.release_tenant(tenant, charge)

    def _evaluate_brownout_locked(self) -> int:
        """Advance the ladder from (pressure, queue depth); meter it."""
        if not self.config.brownout:
            return 0
        mm = self.sc.memory_manager
        level = mm.pressure() if mm is not None else PRESSURE_OK
        depth = len(self._queue) + (1 if self._running is not None else 0)
        transition = self.ladder.evaluate(level, depth)
        if transition is not None:
            with self._metrics_lock:
                self.metrics.brownout_transitions.append(transition)
                self.metrics.brownout_transition_count += 1
                self.metrics.brownout_level = self.ladder.name
        return self.ladder.level

    def _admit_locked(self, fingerprint: str) -> None:
        mm = self.sc.memory_manager
        level = mm.pressure() if mm is not None else PRESSURE_OK
        depth = len(self._queue) + (1 if self._running is not None else 0)
        if level == PRESSURE_CRITICAL:
            with self._metrics_lock:
                self.metrics.requests_shed += 1
            raise ServiceOverloadedError(
                "shedding new work: memory pressure is critical",
                level=level,
                queue_depth=depth,
                retry_after=self.config.shed_retry_after,
            )
        limit = self.config.max_queue_depth
        if level != PRESSURE_OK:
            limit = max(1, limit // 2)
        if depth >= limit:
            with self._metrics_lock:
                self.metrics.requests_shed += 1
            raise ServiceOverloadedError(
                f"request queue full ({depth} >= {limit} under {level} pressure)",
                level=level,
                queue_depth=depth,
                retry_after=self.config.shed_retry_after,
            )
        with self._metrics_lock:
            self.metrics.requests_admitted += 1
            if depth > 0:
                self.metrics.requests_queued += 1

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not len(self._queue) and not self._stopped:
                    self._work.wait()
                if not len(self._queue) and self._stopped:
                    return
                flight = self._queue.pop()
                self._running = flight
                # Re-evaluate the ladder at dispatch too: during a long
                # quiet stretch no submit() would ever step it back down
                # (or up, as the backlog it left behind drains).
                self._evaluate_brownout_locked()
            try:
                self._run_flight(flight)
            finally:
                with self._lock:
                    self._running = None

    def _run_flight(self, flight: _Flight) -> None:
        cfg = self.config
        request = flight.waiters[0].request
        last_exc: BaseException | None = None
        for attempt in range(1, cfg.retries + 2):
            deadline_at = flight.deadline_at()
            if deadline_at is not None and time.monotonic() >= deadline_at:
                last_exc = RequestDeadlineExceeded(
                    "request deadline expired before the engine pass could run",
                    deadline=request.deadline,
                    elapsed=time.monotonic() - flight.waiters[0]._t0,
                )
                break
            offloaded = (
                self.sc.backend == "processes" and self.breaker.allow_offload()
            )
            try:
                result = self._run_engine_pass(
                    request, deadline_at, offload=offloaded
                )
            except RequestDeadlineExceeded as exc:
                last_exc = exc
                break  # budget spent; retrying cannot help
            except SERVICE_RETRYABLE as exc:
                last_exc = exc
                if _breaker_fault(exc):
                    self.breaker.record_failure(offloaded=offloaded)
                if attempt <= cfg.retries:
                    with self._metrics_lock:
                        self.metrics.retries += 1
                    time.sleep(
                        min(
                            cfg.retry_backoff_base * (2 ** (attempt - 1)),
                            cfg.retry_backoff_cap,
                        )
                    )
                continue
            except BaseException as exc:  # noqa: BLE001 — typed to the client
                last_exc = exc
                break
            else:
                self.breaker.record_success(offloaded=offloaded)
                self._finish_flight(flight, result)
                return
        assert last_exc is not None
        self._fail_flight(flight, last_exc)

    def _run_engine_pass(
        self, request: SolveRequest, deadline_at: float | None, *, offload: bool
    ) -> np.ndarray:
        """One solver pass with deadline plumbing and state reclamation.

        The request deadline reaches three layers: the scheduler checks
        it at stage and attempt boundaries (cheap, cooperative), and —
        for offloaded passes — the supervisor's per-call deadline is
        clamped to the remaining budget, so a kernel call stuck in a
        worker is SIGKILLed and reaped (shm segments included) by the
        PR 5 crash protocol instead of outliving the request.  Safe to
        mutate shared context state here because passes are serialized
        on the dispatcher thread; everything is restored in ``finally``.
        """
        sc = self.sc
        with self._metrics_lock:
            self.metrics.engine_passes += 1
            self.metrics.tenant_event(request.tenant, "engine_passes")
            if sc.backend == "processes" and not offload:
                self.metrics.circuit_failovers += 1
        # Brownout effects, applied per pass from the ladder's current
        # rung (passes are serialized, so mutating shared context state
        # here is safe; everything restores in ``finally``):
        # rung >= clamp collapses the pipeline lookahead to barrier mode
        # (the cheapest lever — trims the tracker's live-tile window),
        # rung >= degrade serves IM requests on the CB strategy (the
        # PR 3 latch: bit-identical output, shared-storage staging
        # instead of governed shuffle pools).
        brownout = self.ladder.level if self.config.brownout else 0
        saved_depth = getattr(sc, "pipeline_depth", 1)
        if brownout >= 1 and saved_depth > 1:
            sc.pipeline_depth = 1
            with self._metrics_lock:
                self.metrics.brownout_clamps += 1
        if brownout >= 2 and request.strategy == "im":
            request = replace(request, strategy="cb")
            with self._metrics_lock:
                self.metrics.brownout_degrades += 1
        saved_task_deadline = sc.supervision.task_deadline
        sc._scheduler.set_job_deadline(deadline_at)
        if deadline_at is not None:
            remaining = max(deadline_at - time.monotonic(), 0.001)
            sc.supervision.override_task_deadline(
                remaining
                if saved_task_deadline is None
                else min(saved_task_deadline, remaining)
            )
        try:
            return self._solve(request, offload)
        finally:
            sc._scheduler.set_job_deadline(None)
            sc.supervision.override_task_deadline(saved_task_deadline)
            sc.pipeline_depth = saved_depth
            sc.reclaim_solve_state()

    def _solve(self, request: SolveRequest, offload: bool) -> np.ndarray:
        """Build a solver on the shared context and run it (test seam)."""
        from .core.dpspark import GepSparkSolver

        solver = GepSparkSolver(
            request.spec,
            self.sc,
            r=request.r,
            kernel=request.kernel,
            strategy=request.strategy,
            collect_stats=False,
        )
        if not offload:
            solver.disable_offload()
        result, _report = solver.solve(request.table)
        return result

    def _finish_flight(self, flight: _Flight, result: np.ndarray) -> None:
        # Cache before unpublishing the flight: a racing duplicate either
        # coalesces (pre-removal) or hits the cache (post-removal) — it
        # never slips between the two into a redundant engine pass.
        self.cache.put(flight.fingerprint, result, tenant=flight.tenant)
        self._release_flight_charge(flight)
        with self._lock:
            flight.done = True
            if self._inflight.get(flight.fingerprint) is flight:
                del self._inflight[flight.fingerprint]
            waiters = list(flight.waiters)
        for ticket in waiters:
            ticket._fulfill(result)

    def _fail_flight(self, flight: _Flight, exc: BaseException) -> None:
        self._release_flight_charge(flight)
        with self._lock:
            flight.done = True
            if self._inflight.get(flight.fingerprint) is flight:
                del self._inflight[flight.fingerprint]
            waiters = list(flight.waiters)
        for ticket in waiters:
            ticket._fail(exc)

    def _release_flight_charge(self, flight: _Flight) -> None:
        """Return the flight's in-flight quota bytes exactly once."""
        charge, flight.charge = flight.charge, 0
        self._release_tenant_charge(flight.tenant, charge)

    # -- lifecycle -----------------------------------------------------

    def drain(self) -> None:
        """Flip admission to shedding; in-flight work runs to settlement.

        The first phase of graceful shutdown (DESIGN.md §16): new
        submissions raise a retryable :class:`ServiceDrainingError`
        carrying ``drain_retry_after``, while queued and running flights
        finish (or deadline-cancel through the normal kill/reap
        machinery).  Idempotent.  Call :meth:`stop` afterwards to join
        the dispatcher and checkpoint the journal.
        """
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def resume(self) -> list[SolveTicket]:
        """Hot-restart recovery: rehydrate the cache, replay the WAL.

        Two phases (DESIGN.md §16).  First every readable spooled result
        is pushed into the :class:`ResultCache` (charged to the storage
        pool like any other entry — a squeeze can still evict it).  Then
        each incomplete WAL admission is rebuilt from its wire payload
        and re-submitted through the *normal* admission path: deadlines
        are re-clamped to the budget remaining since the recorded
        wall-clock admission time (an admission whose budget is already
        spent settles ``deadline-cancelled`` without an engine pass),
        duplicate keys across restarts coalesce via the per-key WAL
        state, and duplicate fingerprints coalesce via single-flight.

        Returns the replay tickets; no client waits on them directly —
        reconnecting clients land on the same flights through their
        idempotency keys, or on the settled results afterwards.  Call
        before :func:`serve_forever` binds the socket.
        """
        if self._journal is None:
            raise RuntimeError("resume() requires a RequestJournal")
        for fingerprint, array in self._journal.spooled():
            if self.cache.put(fingerprint, array):
                with self._metrics_lock:
                    self.metrics.results_rehydrated += 1
        tickets: list[SolveTicket] = []
        now = time.time()
        for record in self._journal.incomplete():
            payload = dict(record.get("payload") or {})
            key = record["key"]
            deadline = record.get("deadline")
            if deadline is not None:
                elapsed = max(0.0, now - float(record.get("admitted_unix") or now))
                remaining = float(deadline) - elapsed
                if remaining <= 0:
                    exc = RequestDeadlineExceeded(
                        "request deadline expired while the service was down",
                        deadline=deadline,
                        elapsed=elapsed,
                    )
                    self._journal.settle(
                        key,
                        "deadline-cancelled",
                        fingerprint=record.get("fingerprint"),
                        error=exc,
                    )
                    with self._metrics_lock:
                        self.metrics.deadline_cancelled += 1
                    continue
                payload["deadline"] = remaining
            payload["idempotency_key"] = key
            request = _build_request(payload)
            while True:
                try:
                    ticket = self.submit(request, wire=payload, _replay=True)
                    break
                except ServiceOverloadedError as exc:
                    # Replay must not lose journaled work to its own
                    # burst; trickle it in as the queue frees up.
                    time.sleep(exc.retry_after or 0.05)
            with self._metrics_lock:
                self.metrics.journal_replayed += 1
            tickets.append(ticket)
        return tickets

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service; by default drains queued flights first.

        With ``drain=False`` queued flights fail immediately with a
        retryable :class:`ServiceOverloadedError`.  Always releases the
        cache's storage-pool reservations and detaches the squeeze
        listener, so a stopped service leaves the context's memory
        accounting exactly as it found it.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            aborted = self._queue.drain() if not drain else []
            self._work.notify_all()
        for flight in aborted:
            self._fail_flight(
                flight,
                ServiceOverloadedError(
                    "service stopped before this request ran",
                    queue_depth=0,
                    retry_after=None,
                ),
            )
        self._dispatcher.join(timeout=timeout)
        if self._dispatcher.is_alive():  # pragma: no cover — deadlock guard
            raise RuntimeError("service dispatcher failed to stop")
        if self.sc.memory_manager is not None:
            self.sc.memory_manager.remove_squeeze_listener(self.cache.on_squeeze)
        self.cache.clear()
        if self._journal is not None:
            # Every flight has settled; checkpoint the WAL down to the
            # serviceable remainder so the next start replays no history.
            self._journal.compact()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- request-storm chaos driver ---------------------------------------


def run_request_storm(
    service: SolverService,
    make_request: Callable[[int, int], SolveRequest],
    *,
    clients: int = 16,
    requests_per_client: int = 2,
    plan=None,
    tight_deadline: float = 0.005,
    timeout: float = 120.0,
    on_driver_kill: Callable[[int, int], None] | None = None,
) -> list[dict[str, Any]]:
    """Drive ``clients`` concurrent threads through the service.

    ``make_request(client, seq)`` builds each base request; a
    ``request_storm`` fault plan may twist individual requests into a
    ``duplicate`` of the client's previous one (exercising
    single-flight/cache paths) or clamp on a ``tight_deadline``
    (exercising mid-flight cancellation), both decided by the seeded
    BLAKE2b contract so storms replay exactly.

    A plan arming ``driver_kill`` additionally consults
    :meth:`~repro.sparkle.chaos.FaultPlan.driver_kill` before each
    request and invokes ``on_driver_kill(client, seq)`` when it fires —
    the harness's hook to murder (or drain) the service at a seeded
    point mid-storm.  The client then proceeds to submit into whatever
    wreckage the hook left, which is exactly the point.

    Returns one outcome dict per request: ``{"client", "seq", "twist",
    "ok", "response" | "error", "retryable"}``.  Raises if any client
    thread fails to finish within ``timeout`` — the storm's deadlock
    detector.
    """
    outcomes: list[list[dict[str, Any]]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients)

    def client_loop(client: int) -> None:
        barrier.wait(timeout=timeout)
        previous: SolveRequest | None = None
        for seq in range(requests_per_client):
            if (
                plan is not None
                and on_driver_kill is not None
                and plan.driver_kill(client, seq)
            ):
                on_driver_kill(client, seq)
            twist = plan.request_fault(client, seq) if plan is not None else None
            request = make_request(client, seq)
            if twist == "duplicate" and previous is not None:
                request = previous
            elif twist == "tight_deadline":
                request = replace(request, deadline=tight_deadline)
            previous = request
            record: dict[str, Any] = {
                "client": client,
                "seq": seq,
                "twist": twist,
                "fingerprint": request.fingerprint(),
            }
            try:
                record["response"] = service.solve(request, timeout=timeout)
                record["ok"] = True
            except BaseException as exc:  # noqa: BLE001 — recorded, asserted on
                record["ok"] = False
                record["error"] = exc
                record["retryable"] = is_retryable(exc)
            outcomes[client].append(record)

    threads = [
        threading.Thread(
            target=client_loop, args=(c,), name=f"storm-client-{c}", daemon=True
        )
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    stuck = [t.name for t in threads if t.is_alive()]
    if stuck:
        raise TimeoutError(f"request storm deadlocked; stuck clients: {stuck}")
    return [record for per_client in outcomes for record in per_client]


def run_noisy_neighbor_storm(
    service: SolverService,
    make_request: Callable[[str, int], SolveRequest],
    *,
    hog: str = "hog",
    victims: tuple[str, ...] = ("victim",),
    requests_per_tenant: int = 4,
    plan=None,
    max_retries: int = 12,
    timeout: float = 120.0,
    on_driver_kill: Callable[[int, int], None] | None = None,
) -> dict[str, list[dict[str, Any]]]:
    """Tenant-isolation chaos soak: one hog tenant vs N victims.

    One client thread per tenant drives ``requests_per_tenant`` solves
    built by ``make_request(tenant, seq)`` — which must vary the
    workload by both arguments, so nothing coalesces across tenants and
    every completed request is a real engine pass the fairness
    assertions can count.  Clients are *pipelined*: each thread submits
    all its requests up front, then awaits them in order — so every
    tenant holds a standing backlog in the DRR queue and the dispatch
    share under contention is the weighted share, observable per pass.
    (A synchronous client re-joins the rotation behind the hog after
    every settle and measures queue latency, not fairness.)  A plan
    arming ``noisy_neighbor`` makes the *hog* thread consult
    :meth:`~repro.sparkle.chaos.FaultPlan.noisy_neighbor` before each
    scheduled request and fire that many extra distinct solves first
    (awaited at the end) — the seeded saturation the weighted-DRR/
    quota/brownout plane must absorb.  ``driver_kill`` composes exactly
    as in :func:`run_request_storm` (client index: hog=0, victims
    from 1).

    Every thread retries typed retryable refusals (sheds, quota, rate)
    honoring ``retry_after`` up to ``max_retries`` times, so the record
    distinguishes "slowed down" from "starved out".  Returns
    ``tenant -> [outcome, ...]`` where each outcome carries ``seq``,
    ``ok``, ``response``/``error``, ``retries``, and ``burst`` (hog
    rows: extras injected before that request).
    """
    tenants = (hog,) + tuple(victims)
    outcomes: dict[str, list[dict[str, Any]]] = {t: [] for t in tenants}
    burst_tickets: list[SolveTicket] = []
    burst_lock = threading.Lock()
    barrier = threading.Barrier(len(tenants))
    _RETRYABLE = (
        ServiceOverloadedError,
        TenantQuotaExceededError,
        ServiceDrainingError,
    )

    def submit_with_retry(
        record: dict[str, Any], request: SolveRequest
    ) -> SolveTicket | None:
        """Admit one request, honoring retry_after; None once starved."""
        while True:
            try:
                return service.submit(request)
            except _RETRYABLE as exc:
                if record["retries"] >= max_retries:
                    record.update(ok=False, error=exc)
                    return None
                record["retries"] += 1
                time.sleep(getattr(exc, "retry_after", None) or 0.05)
            except BaseException as exc:  # noqa: BLE001 — recorded, asserted on
                record.update(ok=False, error=exc)
                return None

    def tenant_loop(index: int, tenant: str) -> None:
        barrier.wait(timeout=timeout)
        extra_seq = itertools.count(requests_per_tenant)
        pending: list[tuple[dict[str, Any], SolveRequest, SolveTicket | None]] = []
        for seq in range(requests_per_tenant):
            if (
                plan is not None
                and on_driver_kill is not None
                and plan.driver_kill(index, seq)
            ):
                on_driver_kill(index, seq)
            burst = 0
            if tenant == hog and plan is not None:
                burst = plan.noisy_neighbor(index, seq)
                for _ in range(burst):
                    try:
                        ticket = service.submit(
                            make_request(tenant, next(extra_seq))
                        )
                    except _RETRYABLE:
                        continue  # a refused burst extra is the point
                    with burst_lock:
                        burst_tickets.append(ticket)
            record: dict[str, Any] = {
                "tenant": tenant, "seq": seq, "burst": burst, "retries": 0,
            }
            request = make_request(tenant, seq)
            pending.append((record, request, submit_with_retry(record, request)))
            outcomes[tenant].append(record)
        for record, request, ticket in pending:
            while ticket is not None:
                try:
                    record["response"] = ticket.result(timeout=timeout)
                    record["ok"] = True
                    break
                except _RETRYABLE as exc:
                    if record["retries"] >= max_retries:
                        record.update(ok=False, error=exc)
                        break
                    record["retries"] += 1
                    time.sleep(getattr(exc, "retry_after", None) or 0.05)
                    ticket = submit_with_retry(record, request)
                except BaseException as exc:  # noqa: BLE001 — recorded below
                    record.update(ok=False, error=exc)
                    break

    threads = [
        threading.Thread(
            target=tenant_loop,
            args=(i, t),
            name=f"tenant-{t}",
            daemon=True,
        )
        for i, t in enumerate(tenants)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    stuck = [t.name for t in threads if t.is_alive()]
    if stuck:
        raise TimeoutError(f"noisy-neighbor storm deadlocked; stuck: {stuck}")
    for ticket in burst_tickets:
        try:
            ticket.result(timeout=max(0.0, deadline - time.monotonic()))
        except BaseException:  # noqa: BLE001 — burst extras may fail freely
            pass
    return outcomes


# -- Unix-socket serving (repro serve / repro request) -----------------

_LEN = struct.Struct(">Q")


def _send_msg(sock: socket.socket, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-message")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket, max_bytes: int | None = None) -> Any:
    """Read one length-prefixed pickle frame, refusing oversized ones.

    The length is checked *before* any payload byte is read: a hostile
    or corrupt 8-byte header must not be able to make the server
    allocate (or slowly stream) an unbounded buffer.
    """
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if max_bytes is not None and length > max_bytes:
        raise FrameTooLargeError(
            f"frame announces {length} bytes; this server caps frames at "
            f"{max_bytes} bytes",
            length=length,
            limit=max_bytes,
        )
    return pickle.loads(_recv_exact(sock, length))


def _build_request(payload: dict[str, Any]) -> SolveRequest:
    """Materialize a wire payload into a SolveRequest.

    The wire format names a problem + generator seed rather than
    shipping the table, so identical payloads hash to identical
    fingerprints on the server and dedup/caching work across clients.
    """
    from .core.gep import (
        FloydWarshallGep,
        GaussianEliminationGep,
        TransitiveClosureGep,
    )
    from .core.dpspark import make_kernel
    from .workloads import diagonally_dominant, random_digraph_weights

    problem = payload["problem"]
    n = int(payload["n"])
    seed = int(payload.get("seed", 0))
    density = float(payload.get("density", 0.35))
    specs = {
        "apsp": FloydWarshallGep,
        "ge": GaussianEliminationGep,
        "tc": TransitiveClosureGep,
    }
    if problem not in specs:
        raise ValueError(f"unknown problem {problem!r}")
    spec = specs[problem]()
    if problem == "ge":
        table = diagonally_dominant(n, seed=seed)
    else:
        weights = random_digraph_weights(n, density, seed=seed)
        table = np.isfinite(weights) if problem == "tc" else weights
    table = table.astype(spec.dtype, copy=False)
    return SolveRequest(
        spec=spec,
        table=table,
        r=int(payload.get("r", 4)),
        kernel=make_kernel(spec, "iterative"),
        strategy=payload.get("strategy", "im"),
        deadline=payload.get("deadline"),
        client=payload.get("client", "socket"),
        request_id=payload.get("request_id"),
        tenant=payload.get("tenant"),
        idempotency_key=payload.get("idempotency_key"),
    )


#: Wire-payload keys that fully determine a rebuildable request — what
#: the request journal persists.  Transport-only keys (``timeout``,
#: ``return_result``, ``op``) deliberately stay out: they shape the
#: reply, not the work, and a replay has no client to reply to.
_WIRE_KEYS = (
    "problem",
    "n",
    "seed",
    "density",
    "r",
    "strategy",
    "deadline",
    "client",
    "request_id",
    "tenant",
    "idempotency_key",
)


def _journal_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """The JSON-safe replayable core of a wire payload."""
    return {
        key: payload[key] for key in _WIRE_KEYS if payload.get(key) is not None
    }


def _reclaim_stale_socket(socket_path: str, service: SolverService) -> None:
    """Reclaim a socket file left behind by a SIGKILLed server.

    A dead server cannot unlink its socket; the file keeps existing and
    every connect gets ``ConnectionRefusedError`` forever.  Probe it: no
    listener → unlink and take the address; a live listener answers the
    connect → refuse to bind on top of a running service.
    """
    if not os.path.exists(socket_path):
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    alive = False
    try:
        probe.connect(socket_path)
        alive = True
    except OSError:
        pass
    finally:
        probe.close()
    if alive:
        raise OSError(
            f"socket {socket_path} already has a live service listening"
        )
    os.unlink(socket_path)
    with service._metrics_lock:
        service.metrics.stale_sockets_reclaimed += 1


def serve_forever(
    service: SolverService,
    socket_path: str,
    *,
    max_requests: int | None = None,
    ready: threading.Event | None = None,
    max_frame_bytes: int | None = None,
    install_signal_handlers: bool | None = None,
) -> int:
    """Accept loop: one connection = one request = one reply.

    Replies are ``{"status": "ok", ...summary...}`` (plus the result
    array when the payload asks ``return_result``) or ``{"status":
    "error", "error": <pickled typed exception>, "retryable": bool}``.
    ``max_requests`` bounds the loop for tests; returns requests served.

    Per-connection failures — oversized frames, clients torn away
    mid-frame or mid-reply — are metered and answered (when possible)
    on that connection only; nothing a single client does can kill the
    accept loop.

    Shutdown follows the §16 drain sequence.  SIGTERM/SIGINT (handlers
    installed when running on the main thread, unless
    ``install_signal_handlers=False``) flip the service to draining —
    new admissions shed with :class:`ServiceDrainingError` — and close
    the listener, so late clients fail fast instead of hanging on a
    half-dead server.  Accepted connections are then joined (their
    flights finish or deadline-cancel), the request journal is
    checkpointed, and the socket file is unlinked last.  The caller
    tears down the service and context only after this returns.
    """
    if max_frame_bytes is None:
        max_frame_bytes = service.config.max_frame_bytes
    _reclaim_stale_socket(socket_path, service)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    served = 0
    handlers: list[threading.Thread] = []
    stopping = threading.Event()

    def begin_drain(signum=None, frame=None):
        service.drain()
        stopping.set()
        # Closing the listener pops accept() out with OSError and makes
        # connects fail fast while in-flight work settles.
        server.close()

    installed: list[tuple[int, Any]] = []
    if install_signal_handlers is None:
        install_signal_handlers = (
            threading.current_thread() is threading.main_thread()
        )
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            installed.append((sig, signal.signal(sig, begin_drain)))
    try:
        server.bind(socket_path)
        server.listen(16)
        if ready is not None:
            ready.set()
        while (max_requests is None or served < max_requests) and not stopping.is_set():
            try:
                conn, _ = server.accept()
            except OSError:
                break  # listener closed by begin_drain
            served += 1
            handlers = [t for t in handlers if t.is_alive()]
            t = threading.Thread(
                target=_handle_conn,
                args=(service, conn, max_frame_bytes),
                daemon=True,
            )
            t.start()
            handlers.append(t)
        # Every accepted request gets its reply before teardown — both
        # for bounded test runs and for the drain path.
        for t in handlers:
            t.join()
        if service._journal is not None:
            service._journal.compact()
        return served
    finally:
        for sig, previous in installed:
            signal.signal(sig, previous)
        server.close()
        # Unlinked last (§16): while draining, the path still names a
        # closed listener, so clients get an immediate refusal rather
        # than a vanished file followed by a recycled address.
        if os.path.exists(socket_path):
            os.unlink(socket_path)


def _handle_conn(
    service: SolverService,
    conn: socket.socket,
    max_frame_bytes: int | None = None,
) -> None:
    def note_disconnect() -> None:
        with service._metrics_lock:
            service.metrics.client_disconnects += 1

    with conn:
        try:
            payload = _recv_msg(conn, max_bytes=max_frame_bytes)
        except FrameTooLargeError as exc:
            with service._metrics_lock:
                service.metrics.frames_rejected += 1
            try:
                _send_msg(
                    conn, {"status": "error", "error": exc, "retryable": False}
                )
            except OSError:
                note_disconnect()
            return
        except (ConnectionError, OSError):
            # Torn frame / client vanished mid-send: this connection's
            # problem only, the accept loop never hears about it.
            note_disconnect()
            return
        try:
            if payload.get("op") == "stats":
                mm = service.sc.memory_manager
                _send_msg(conn, {
                    "status": "ok",
                    **service.metrics.summary(),
                    "pipeline": service.sc.metrics.pipeline_summary(),
                    "tenants": mm.tenant_usage() if mm is not None else {},
                })
                return
            request = _build_request(payload)
            response = service.solve(
                request,
                timeout=payload.get("timeout"),
                wire=_journal_payload(payload),
            )
            reply: dict[str, Any] = {
                "status": "ok",
                "fingerprint": response.fingerprint,
                "from_cache": response.from_cache,
                "coalesced": response.coalesced,
                "wall_seconds": response.wall_seconds,
                "result_checksum": _checksum(response.result),
            }
            if payload.get("return_result"):
                reply["result"] = response.result
            _send_msg(conn, reply)
        except (BrokenPipeError, ConnectionResetError):
            # The work settled (and, if journaled, durably so — the
            # client's keyed retry will be served the same result); only
            # the reply was lost.
            note_disconnect()
        except BaseException as exc:  # noqa: BLE001 — shipped to the client
            try:
                _send_msg(
                    conn,
                    {
                        "status": "error",
                        "error": exc,
                        "retryable": is_retryable(exc),
                    },
                )
            except OSError:
                note_disconnect()


def send_request(
    socket_path: str,
    payload: dict[str, Any],
    *,
    timeout: float = 120.0,
    retries: int = 0,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
) -> dict[str, Any]:
    """Send one request dict to a running service; returns the reply.

    With ``retries > 0`` the client survives a dying, restarting, or
    overloaded server.  Transport failures (connection refused, socket
    file briefly missing, reset mid-reply, timeout) are retried with
    jittered exponential backoff.  Typed *retryable* error replies that
    carry a ``retry_after`` hint — overload sheds, drain refusals,
    tenant quota/rate refusals — are retried after sleeping exactly
    that hint: the server knows when its queue (or the tenant's bucket)
    will have drained, so its schedule beats any client-side guess.
    Other typed error replies (deadline overruns, engine faults) are
    returned, not retried — the transport worked, and the retry policy
    for those belongs to the caller; so is the last refusal once
    attempts run out.

    Solve payloads are stamped with a generated ``idempotency_key``
    (when the caller supplied none) that is *reused across attempts* —
    a journal-backed server replays the settled result instead of
    re-running work whose reply was lost, so retrying is safe even
    after the request was accepted.  The transport-backoff jitter uses
    the seeded chaos hash keyed on the idempotency key and attempt —
    deterministic, like every other "random" in this engine.
    """
    payload = dict(payload)
    key = payload.get("idempotency_key")
    if retries > 0 and payload.get("op") != "stats" and key is None:
        key = f"auto:{os.urandom(8).hex()}"
        payload["idempotency_key"] = key
    last_exc: Exception | None = None
    reply: dict[str, Any] | None = None
    for attempt in range(retries + 1):
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.settimeout(timeout)
        try:
            client.connect(socket_path)
            _send_msg(client, payload)
            reply = _recv_msg(client)
        except (OSError, ConnectionError) as exc:
            last_exc = exc
            if attempt < retries:
                jitter = deterministic_fraction(
                    0, "reconnect", (key or "", attempt + 1)
                )
                delay = min(backoff_base * 2**attempt, backoff_cap)
                time.sleep(delay * (0.5 + jitter))
            continue
        finally:
            client.close()
        error = reply.get("error") if isinstance(reply, dict) else None
        retry_after = getattr(error, "retry_after", None)
        if (
            attempt < retries
            and retry_after is not None
            and isinstance(
                error,
                (
                    ServiceOverloadedError,
                    ServiceDrainingError,
                    TenantQuotaExceededError,
                ),
            )
        ):
            time.sleep(retry_after)
            continue
        return reply
    if reply is not None:
        return reply
    assert last_exc is not None
    raise last_exc
