"""Closed-semiring abstractions used by GEP dynamic programs.

The paper (§V-A) frames Floyd-Warshall and transitive closure as path
problems over a closed semiring ``(S, ⊕, ⊙, 0̄, 1̄)`` in the sense of Aho,
Hopcroft & Ullman.  A :class:`Semiring` bundles the two binary operations
with their identities as *vectorized* NumPy operations so tile kernels can
apply one ``k``-step to a whole tile at once (the "offload to bare metal"
idiom the paper gets from Numba/NumPy).

Only the operations the GEP kernels need are required: ``add`` (⊕),
``mul`` (⊙), the identities, and array constructors.  ``star`` (Kleene
closure of a scalar) is optional and only needed by closed-semiring
algorithms such as R-Kleene; the concrete semirings shipped here provide
it where it is well defined.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

__all__ = ["Semiring", "SemiringError"]


class SemiringError(ValueError):
    """Raised for operations a particular semiring does not support."""


class Semiring(abc.ABC):
    """A closed semiring ``(S, ⊕, ⊙, zero, one)`` over NumPy arrays.

    Subclasses define the scalar structure; this base class supplies the
    derived array helpers (constructors, identity matrices, semiring
    matrix products and closures).

    Attributes
    ----------
    name:
        Registry name, e.g. ``"tropical"``.
    dtype:
        Canonical NumPy dtype of table entries.
    zero:
        Additive identity (⊕-identity, ⊙-annihilator), e.g. ``+inf`` for
        the tropical semiring.
    one:
        Multiplicative identity, e.g. ``0.0`` for the tropical semiring.
    """

    #: registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, dtype: Any, zero: Any, one: Any) -> None:
        self.dtype = np.dtype(dtype)
        self.zero = self.dtype.type(zero)
        self.one = self.dtype.type(one)

    # ------------------------------------------------------------------
    # scalar/vector structure (subclass responsibility)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise semiring addition ``a ⊕ b`` (vectorized)."""

    @abc.abstractmethod
    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise semiring multiplication ``a ⊙ b`` (vectorized)."""

    def add_inplace(self, out: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``out ⊕= b`` — subclasses may override with a no-copy version."""
        out[...] = self.add(out, b)
        return out

    def star(self, a: Any) -> Any:
        """Kleene closure ``a* = one ⊕ a ⊕ a⊙a ⊕ ...`` of a scalar.

        Only meaningful for *closed* semirings; the default raises.
        """
        raise SemiringError(f"semiring {self.name!r} does not define star()")

    # ------------------------------------------------------------------
    # derived reductions
    # ------------------------------------------------------------------
    def add_reduce(self, a: np.ndarray, axis: int | None = None) -> np.ndarray:
        """⊕-reduction along an axis (default: all elements)."""
        out = np.full((), self.zero, dtype=self.dtype) if axis is None else None
        result = a
        if axis is None:
            flat = a.reshape(-1)
            acc = self.zero
            # vector tree-reduction: fold in halves to keep it O(n) numpy calls
            while flat.size > 1:
                half = flat.size // 2
                head = self.add(flat[:half], flat[half : 2 * half])
                tail = flat[2 * half :]
                flat = np.concatenate([head, tail]) if tail.size else head
            if flat.size == 1:
                acc = self.add(np.asarray(acc), flat[0])
            return self.dtype.type(np.asarray(acc)[()])
        # axis reduction via successive pairwise folds
        result = np.moveaxis(a, axis, 0)
        while result.shape[0] > 1:
            half = result.shape[0] // 2
            head = self.add(result[:half], result[half : 2 * half])
            tail = result[2 * half :]
            result = np.concatenate([head, tail], axis=0) if tail.shape[0] else head
        return result[0]

    # ------------------------------------------------------------------
    # array constructors
    # ------------------------------------------------------------------
    def zeros(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Array filled with the ⊕-identity."""
        return np.full(shape, self.zero, dtype=self.dtype)

    def ones(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Array filled with the ⊙-identity."""
        return np.full(shape, self.one, dtype=self.dtype)

    def eye(self, n: int) -> np.ndarray:
        """Semiring identity matrix: ``one`` on the diagonal, ``zero`` off it."""
        out = self.zeros((n, n))
        np.fill_diagonal(out, self.one)
        return out

    def asarray(self, a: Any) -> np.ndarray:
        """Coerce ``a`` to this semiring's dtype."""
        return np.asarray(a, dtype=self.dtype)

    # ------------------------------------------------------------------
    # derived matrix algebra
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Semiring matrix product ``C[i,j] = ⊕_k a[i,k] ⊙ b[k,j]``.

        Implemented as a per-``k`` rank-1 fold so only vectorized ⊕/⊙ are
        required of subclasses.  Concrete semirings override with faster
        formulations where possible (e.g. ``@`` for the real field).
        """
        a = self.asarray(a)
        b = self.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise SemiringError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        out = self.zeros((a.shape[0], b.shape[1]))
        for k in range(a.shape[1]):
            out[...] = self.add(out, self.mul(a[:, k : k + 1], b[k : k + 1, :]))
        return out

    def matpow(self, a: np.ndarray, p: int) -> np.ndarray:
        """Semiring matrix power by repeated squaring (``p >= 0``)."""
        a = self.asarray(a)
        if p < 0:
            raise SemiringError("negative semiring matrix power")
        result = self.eye(a.shape[0])
        base = a.copy()
        while p:
            if p & 1:
                result = self.matmul(result, base)
            base_needed = p >> 1
            if base_needed:
                base = self.matmul(base, base)
            p = base_needed
        return result

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Exact elementwise equality (identities compare equal to themselves)."""
        return bool(np.array_equal(self.asarray(a), self.asarray(b)))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype}, "
            f"zero={self.zero!r}, one={self.one!r})"
        )
