"""Name-based registry of the semirings shipped with the library."""

from __future__ import annotations

from .base import Semiring, SemiringError
from .boolean import Boolean
from .real import CountingSemiring, RealField
from .tropical import MaxPlus, MinPlus

__all__ = ["get_semiring", "available_semirings", "register_semiring"]

_REGISTRY: dict[str, Semiring] = {}


def register_semiring(semiring: Semiring, *aliases: str) -> Semiring:
    """Register ``semiring`` under its name plus any ``aliases``."""
    for key in (semiring.name, *aliases):
        _REGISTRY[key.lower()] = semiring
    return semiring


def get_semiring(name: str | Semiring) -> Semiring:
    """Look up a semiring by name (or pass an instance through)."""
    if isinstance(name, Semiring):
        return name
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise SemiringError(
            f"unknown semiring {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_semirings() -> list[str]:
    """Sorted list of registered semiring names (aliases included)."""
    return sorted(_REGISTRY)


register_semiring(MinPlus(), "minplus", "shortest-path")
register_semiring(MaxPlus(), "longest-path")
register_semiring(Boolean(), "bool", "reachability")
register_semiring(RealField(), "field")
register_semiring(CountingSemiring(), "paths")
