"""Closed semirings for GEP path problems (paper §V-A).

Public surface::

    from repro.semiring import MinPlus, Boolean, get_semiring
"""

from .base import Semiring, SemiringError
from .boolean import Boolean
from .real import CountingSemiring, RealField
from .registry import available_semirings, get_semiring, register_semiring
from .tropical import MaxPlus, MinPlus

__all__ = [
    "Semiring",
    "SemiringError",
    "MinPlus",
    "MaxPlus",
    "Boolean",
    "RealField",
    "CountingSemiring",
    "get_semiring",
    "register_semiring",
    "available_semirings",
]
