"""Boolean semiring — transitive closure (Warshall's algorithm).

``({0,1}, or, and, 0, 1)``: the GEP instance over this semiring computes
reachability, which the paper lists (with Floyd's and Warshall's
algorithms) as a special case of Aho et al.'s closed-semiring path
framework.
"""

from __future__ import annotations

import numpy as np

from .base import Semiring

__all__ = ["Boolean"]


class Boolean(Semiring):
    """The boolean semiring ``({False, True}, or, and, False, True)``."""

    name = "boolean"

    def __init__(self) -> None:
        super().__init__(np.bool_, False, True)

    def add(self, a, b):
        return np.logical_or(a, b)

    def add_inplace(self, out, b):
        np.logical_or(out, b, out=out)
        return out

    def mul(self, a, b):
        return np.logical_and(a, b)

    def star(self, a):
        """``a* = True`` for every boolean ``a`` (closure always reachable)."""
        return True

    def matmul(self, a, b):
        """Boolean product via integer matmul (fast, exact)."""
        a = self.asarray(a)
        b = self.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        return (a.astype(np.uint8) @ b.astype(np.uint8)) > 0
