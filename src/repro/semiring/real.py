"""The real field viewed as a semiring ``(R, +, *, 0, 1)``.

Used for cross-checks and for counting-paths style GEP instances; the
Gaussian-elimination GEP update is *not* a semiring fold (its ``f`` divides
by the pivot), so GE is expressed through :class:`repro.core.gep.GepSpec`
directly rather than through a semiring.
"""

from __future__ import annotations

import numpy as np

from .base import Semiring, SemiringError

__all__ = ["RealField", "CountingSemiring"]


class RealField(Semiring):
    """``(R, +, *, 0, 1)`` with IEEE doubles."""

    name = "real"

    def __init__(self, dtype=np.float64) -> None:
        super().__init__(dtype, 0.0, 1.0)

    def add(self, a, b):
        return np.add(a, b)

    def add_inplace(self, out, b):
        np.add(out, b, out=out)
        return out

    def mul(self, a, b):
        return np.multiply(a, b)

    def star(self, a):
        """``a* = 1 / (1 - a)`` for ``|a| < 1`` (geometric series)."""
        a = float(a)
        if abs(a) >= 1.0:
            raise SemiringError(f"star({a}) diverges over the real field")
        return 1.0 / (1.0 - a)

    def matmul(self, a, b):
        a = self.asarray(a)
        b = self.asarray(b)
        return a @ b


class CountingSemiring(Semiring):
    """``(N, +, *, 0, 1)`` over int64 — counts walks of bounded length.

    Useful as an independently-checkable GEP instance in tests: the GEP
    fold over this semiring with FW's Σ_G counts, for each (i, j), the
    number of paths whose intermediate vertices come from a prefix set.
    """

    name = "counting"

    def __init__(self) -> None:
        super().__init__(np.int64, 0, 1)

    def add(self, a, b):
        return np.add(a, b)

    def add_inplace(self, out, b):
        np.add(out, b, out=out)
        return out

    def mul(self, a, b):
        return np.multiply(a, b)

    def matmul(self, a, b):
        a = self.asarray(a)
        b = self.asarray(b)
        return a @ b
