"""Tropical (min,+) and (max,+) semirings.

Floyd-Warshall's all-pairs shortest path computes over the closed semiring
``(R ∪ {+inf}, min, +, +inf, 0)`` (paper §V-A).  Longest-path style
problems on DAGs use the dual ``(R ∪ {-inf}, max, +, -inf, 0)``.
"""

from __future__ import annotations

import numpy as np

from .base import Semiring

__all__ = ["MinPlus", "MaxPlus"]


def _plus_with_infinities(a: np.ndarray, b: np.ndarray, annihilator: float) -> np.ndarray:
    """``a + b`` where ``annihilator + x == annihilator`` for every x.

    IEEE arithmetic already gives ``inf + finite == inf``; the only case
    needing care is ``inf + (-inf) -> nan``, which must resolve to the
    semiring zero (the annihilator).  We silence the invalid-op warning for
    that deliberate case only.
    """
    with np.errstate(invalid="ignore"):
        out = np.add(a, b)
    nan_mask = np.isnan(out)
    if np.any(nan_mask):
        out = np.where(nan_mask, annihilator, out)
    return out


class MinPlus(Semiring):
    """The tropical semiring ``(R ∪ {+inf}, min, +, +inf, 0)``."""

    name = "tropical"

    def __init__(self, dtype=np.float64) -> None:
        super().__init__(dtype, np.inf, 0.0)

    def add(self, a, b):
        return np.minimum(a, b)

    def add_inplace(self, out, b):
        np.minimum(out, b, out=out)
        return out

    def mul(self, a, b):
        return _plus_with_infinities(np.asarray(a), np.asarray(b), self.zero)

    def star(self, a):
        """``a* = min(0, a, a+a, ...)``: 0 for ``a >= 0``, ``-inf`` otherwise.

        A negative scalar models a negative cycle through a vertex, whose
        closure diverges to ``-inf``.
        """
        a = float(a)
        return self.one if a >= 0 else -np.inf

    def matmul(self, a, b):
        """Min-plus product via broadcast-and-reduce (one temp per row block)."""
        a = self.asarray(a)
        b = self.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        out = self.zeros((a.shape[0], b.shape[1]))
        # Row-blocked to bound the (m, k, n) broadcast temporary.
        row_block = max(1, int(2**20 // max(1, a.shape[1] * b.shape[1])))
        for start in range(0, a.shape[0], row_block):
            stop = min(start + row_block, a.shape[0])
            sums = _plus_with_infinities(
                a[start:stop, :, None], b[None, :, :], self.zero
            )
            out[start:stop] = sums.min(axis=1)
        return out


class MaxPlus(Semiring):
    """The dual tropical semiring ``(R ∪ {-inf}, max, +, -inf, 0)``."""

    name = "maxplus"

    def __init__(self, dtype=np.float64) -> None:
        super().__init__(dtype, -np.inf, 0.0)

    def add(self, a, b):
        return np.maximum(a, b)

    def add_inplace(self, out, b):
        np.maximum(out, b, out=out)
        return out

    def mul(self, a, b):
        return _plus_with_infinities(np.asarray(a), np.asarray(b), self.zero)

    def star(self, a):
        """0 for ``a <= 0`` (no gain cycles), ``+inf`` otherwise."""
        a = float(a)
        return self.one if a <= 0 else np.inf
