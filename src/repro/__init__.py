"""repro — reproduction of "Efficient Execution of Dynamic Programming
Algorithms on Apache Spark" (Javanmard et al., IEEE CLUSTER 2020).

Subpackages
-----------
``repro.core``
    GEP problem specs, blocked/recursive execution, the symbolic r-way
    derivation machinery, distributed IM/CB drivers and public solvers
    (``floyd_warshall``, ``gaussian_solve``, ``transitive_closure``).
``repro.sparkle``
    A from-scratch in-process Apache-Spark-model engine (RDDs, lazy
    lineage, DAG scheduler, shuffle, partitioners, broadcast).
``repro.kernels``
    Iterative and parametric r-way recursive divide-&-conquer tile
    kernels, the simulated OpenMP runtime, and an ideal-cache simulator.
``repro.poly``
    The polyhedral-lite derivation of the kernels (methodology 2).
``repro.cluster``
    Cluster configs (the paper's two testbeds) and the calibrated cost
    model used to regenerate the paper's tables and figures.
``repro.workloads`` / ``repro.baselines`` / ``repro.experiments``
    Synthetic inputs, comparison baselines, and one module per paper
    table/figure (``python -m repro.experiments``).

Quickstart
----------
>>> import numpy as np
>>> from repro import floyd_warshall
>>> w = np.array([[0, 3, np.inf], [np.inf, 0, 1], [2, np.inf, 0.0]])
>>> float(floyd_warshall(w)[0, 2])
4.0
"""

from .core import (
    FloydWarshallGep,
    GaussianEliminationGep,
    GepSpec,
    SemiringGep,
    TransitiveClosureGep,
    floyd_warshall,
    gaussian_solve,
    lu_decompose,
    run_gep,
    semiring_closure,
    transitive_closure,
    tune,
)
from .sparkle import SparkleContext

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SparkleContext",
    "GepSpec",
    "SemiringGep",
    "FloydWarshallGep",
    "GaussianEliminationGep",
    "TransitiveClosureGep",
    "floyd_warshall",
    "gaussian_solve",
    "lu_decompose",
    "transitive_closure",
    "semiring_closure",
    "run_gep",
    "tune",
]
