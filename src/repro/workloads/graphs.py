"""Synthetic graph workload generators.

The paper evaluates FW-APSP on dense n x n weight matrices (n = 32K).  The
generators here produce deterministic, seedable instances of the graph
families its motivation cites: random digraphs, road-network-like grids,
and scale-free graphs, all returned as dense weight matrices over the
tropical semiring (``+inf`` = no edge, 0 on the diagonal).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_digraph_weights",
    "grid_road_network",
    "scale_free_weights",
    "layered_dag_weights",
    "weights_to_networkx",
    "weights_to_boolean",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_digraph_weights(
    n: int,
    density: float = 0.3,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
    allow_negative: bool = False,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Erdős–Rényi style directed graph as a dense tropical weight matrix.

    Parameters
    ----------
    n:
        Number of vertices.
    density:
        Independent probability of each directed edge (i, j), i != j.
    weight_range:
        Uniform edge-weight interval ``[lo, hi)``.
    allow_negative:
        When true, weights are shifted so some are negative while keeping
        the graph free of negative cycles is *not* guaranteed — intended
        for stress tests only.
    seed:
        Seed or generator for determinism.

    Returns
    -------
    (n, n) float64 matrix with ``inf`` for absent edges and 0 diagonal.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = _rng(seed)
    lo, hi = weight_range
    w = rng.uniform(lo, hi, size=(n, n))
    if allow_negative:
        w -= (hi - lo) * 0.25
    mask = rng.random((n, n)) < density
    out = np.where(mask, w, np.inf)
    np.fill_diagonal(out, 0.0)
    return out


def grid_road_network(
    rows: int,
    cols: int,
    *,
    diagonal_shortcuts: float = 0.05,
    weight_range: tuple[float, float] = (1.0, 5.0),
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Road-network-like workload: a rows x cols grid with both-way streets.

    Each lattice neighbour pair gets independent forward/backward weights
    (asymmetric travel times).  A fraction of random "shortcut" edges
    models highways.  Mirrors the transportation-research use cases the
    paper cites for FW-APSP.
    """
    n = rows * cols
    out = np.full((n, n), np.inf)
    np.fill_diagonal(out, 0.0)
    rng = _rng(seed)
    lo, hi = weight_range

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols:
                    v = vid(rr, cc)
                    out[u, v] = rng.uniform(lo, hi)
                    out[v, u] = rng.uniform(lo, hi)
    n_shortcuts = int(diagonal_shortcuts * n)
    if n_shortcuts:
        us = rng.integers(0, n, size=n_shortcuts)
        vs = rng.integers(0, n, size=n_shortcuts)
        for u, v in zip(us, vs):
            if u != v:
                out[u, v] = min(out[u, v], rng.uniform(lo, hi) * 0.5)
    return out


def scale_free_weights(
    n: int,
    *,
    attach: int = 2,
    weight_range: tuple[float, float] = (1.0, 10.0),
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Preferential-attachment digraph (Barabási–Albert flavoured).

    Each new vertex attaches ``attach`` out-edges to existing vertices
    chosen proportionally to their current degree, then the direction of
    each edge is randomized, producing a heavy-tailed degree distribution.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    rng = _rng(seed)
    out = np.full((n, n), np.inf)
    np.fill_diagonal(out, 0.0)
    lo, hi = weight_range
    degree = np.ones(n)
    for v in range(1, n):
        k = min(attach, v)
        probs = degree[:v] / degree[:v].sum()
        targets = rng.choice(v, size=k, replace=False, p=probs)
        for t in targets:
            u, w = (v, int(t)) if rng.random() < 0.5 else (int(t), v)
            out[u, w] = rng.uniform(lo, hi)
            degree[v] += 1
            degree[t] += 1
    return out


def layered_dag_weights(
    layers: int,
    width: int,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
    density: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Layered DAG (pipeline/scheduling style) weight matrix.

    Edges only go from layer L to layer L+1, which makes reachability and
    longest-path answers easy to verify independently in tests.
    """
    n = layers * width
    out = np.full((n, n), np.inf)
    np.fill_diagonal(out, 0.0)
    rng = _rng(seed)
    lo, hi = weight_range
    for layer in range(layers - 1):
        base = layer * width
        nxt = base + width
        mask = rng.random((width, width)) < density
        weights = rng.uniform(lo, hi, size=(width, width))
        block = np.where(mask, weights, np.inf)
        out[base : base + width, nxt : nxt + width] = block
    return out


def weights_to_boolean(weights: np.ndarray) -> np.ndarray:
    """Adjacency (reachability seed) matrix: finite off-diagonal entries."""
    adj = np.isfinite(weights)
    np.fill_diagonal(adj, True)
    return adj


def weights_to_networkx(weights: np.ndarray):
    """Convert a tropical weight matrix to a ``networkx.DiGraph``.

    Imported lazily so the core library does not require networkx at
    import time.
    """
    import networkx as nx

    n = weights.shape[0]
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    finite = np.argwhere(np.isfinite(weights))
    for i, j in finite:
        if i != j:
            g.add_edge(int(i), int(j), weight=float(weights[i, j]))
    return g
