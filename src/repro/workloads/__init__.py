"""Deterministic synthetic workload generators for the benchmarks."""

from .graphs import (
    grid_road_network,
    layered_dag_weights,
    random_digraph_weights,
    scale_free_weights,
    weights_to_boolean,
    weights_to_networkx,
)
from .matrices import augmented_system, diagonally_dominant, random_rhs, spd_matrix

__all__ = [
    "random_digraph_weights",
    "grid_road_network",
    "scale_free_weights",
    "layered_dag_weights",
    "weights_to_boolean",
    "weights_to_networkx",
    "diagonally_dominant",
    "spd_matrix",
    "augmented_system",
    "random_rhs",
]
