"""Linear-algebra workload generators for the GE benchmark.

Gaussian elimination *without pivoting* is numerically safe only for
matrices that never produce a (near-)zero pivot; the paper (§IV, §V-A)
uses it for "symmetric positive-definite or diagonally dominant real
matrices", so that is what we generate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "diagonally_dominant",
    "spd_matrix",
    "augmented_system",
    "random_rhs",
]


def _rng(seed):
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def diagonally_dominant(
    n: int,
    *,
    dominance: float = 2.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Strictly row-diagonally-dominant matrix.

    Off-diagonal entries are uniform in [-1, 1]; each diagonal entry is set
    to ``dominance * (row abs-sum)`` (with sign +), which guarantees every
    GE pivot stays bounded away from zero.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if dominance <= 1.0:
        raise ValueError("dominance must exceed 1 for strict dominance")
    rng = _rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    np.fill_diagonal(a, 0.0)
    row_sums = np.abs(a).sum(axis=1)
    # Guard fully-zero rows (n == 1): give them a unit pivot.
    np.fill_diagonal(a, dominance * np.maximum(row_sums, 1.0))
    return a


def spd_matrix(
    n: int,
    *,
    condition: float = 100.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Symmetric positive-definite matrix with controlled condition number.

    Built as ``Q diag(lam) Q^T`` with log-spaced eigenvalues in
    ``[1/condition, 1]`` and a random orthogonal ``Q``.
    """
    if condition < 1.0:
        raise ValueError("condition must be >= 1")
    rng = _rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    lam = np.logspace(-np.log10(condition), 0.0, n)
    return (q * lam) @ q.T


def random_rhs(
    n: int,
    m: int = 1,
    *,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Right-hand side matrix of shape (n, m) with entries in [-1, 1]."""
    rng = _rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n, m))


def augmented_system(
    n: int,
    *,
    kind: str = "diag-dominant",
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """System matrix, known solution and augmented [A | b] matrix.

    Mirrors the paper's framing: a system of (n-1) equations in (n-1)
    unknowns is held in an n x n matrix whose last column is the RHS.
    Here we return the more conventional ``A`` (n x n), ``x_true`` (n,)
    and the (n, n+1) augmented matrix ``[A | A @ x_true]``.
    """
    rng = _rng(seed)
    if kind == "diag-dominant":
        a = diagonally_dominant(n, seed=rng)
    elif kind == "spd":
        a = spd_matrix(n, seed=rng)
    else:
        raise ValueError(f"unknown system kind {kind!r}")
    x_true = rng.uniform(-1.0, 1.0, size=n)
    b = a @ x_true
    aug = np.concatenate([a, b[:, None]], axis=1)
    return a, x_true, aug
