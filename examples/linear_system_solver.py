"""Distributed linear algebra: Gaussian elimination without pivoting.

The paper's second benchmark as a user-facing workflow: solve a
diagonally dominant system, extract the LU factorization and the
determinant, and compare the CB strategy (the winner for GE, §V-C)
against IM on engine communication metrics.

Run:  python examples/linear_system_solver.py
"""

import numpy as np

from repro import SparkleContext, gaussian_solve, lu_decompose
from repro.core import determinant
from repro.workloads import augmented_system


def main() -> None:
    n = 80
    a, x_true, _aug = augmented_system(n, seed=11)
    b = a @ x_true
    print(f"system: {n} equations, diagonally dominant (GE-safe, no pivoting)\n")

    # Single-node solve + residual.
    x = gaussian_solve(a, b, engine="local", r=4, kernel="recursive",
                       r_shared=2, base_size=16)
    residual = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    error = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(f"local solve: relative residual {residual:.2e}, error vs truth {error:.2e}")

    # LU factorization recovered from the GEP-eliminated table.
    l, u = lu_decompose(a)
    print(f"LU factorization: ||A - LU|| / ||A|| = "
          f"{np.linalg.norm(a - l @ u) / np.linalg.norm(a):.2e}")
    det_ref = np.linalg.det(a)
    print(f"determinant via pivots: {determinant(a):.6g} (LAPACK {det_ref:.6g})")

    # Distributed: the paper found CB decisively better for GE because
    # kernel A's output fans out to *every* other kernel (B, C and D).
    print("\ndistributed solve, both strategies (watch the shuffle volume):")
    for strategy in ("im", "cb"):
        with SparkleContext(num_executors=4, cores_per_executor=2) as sc:
            x_d = gaussian_solve(
                a, b, engine="spark", sc=sc, r=5, kernel="recursive",
                r_shared=2, base_size=16, strategy=strategy,
            )
            assert np.allclose(x_d, x, rtol=1e-8)
            m = sc.metrics
            print(
                f"  {strategy.upper():>2}: shuffle {m.total_shuffle_bytes / 1e6:6.2f} MB, "
                f"collect {m.total_collect_bytes / 1e6:5.2f} MB, "
                f"storage {m.storage_bytes_written / 1e6:5.2f} MB written / "
                f"{m.storage_bytes_read / 1e6:6.2f} MB read"
            )
    print("\nboth strategies agree with the local solve ✓")

    # Multiple right-hand sides in one elimination pass.
    rhs = np.stack([b, 2 * b, a @ np.ones(n)], axis=1)
    xs = gaussian_solve(a, rhs)
    print(f"multi-RHS solve: {rhs.shape[1]} systems, "
          f"max residual {np.abs(a @ xs - rhs).max():.2e}")


if __name__ == "__main__":
    main()
