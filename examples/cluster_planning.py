"""Capacity planning with the cluster cost model.

The paper's closing lesson (§V-C, Fig. 8): the right (r, r_shared,
executor-cores, OMP_NUM_THREADS) depends on the cluster, and carrying a
configuration from one cluster to another can cost 3x.  This example
uses the calibrated cost model the way an operator would:

* ask the tuning advisor for the best plan on both paper testbeds;
* evaluate each cluster's plan on the *other* cluster (the mistuning
  penalty);
* print a Table-I-style sensitivity grid for one benchmark.

Run:  python examples/cluster_planning.py
"""

from repro.cluster import CostModel, ExecutionPlan, haswell16, skylake16
from repro.core import tune
from repro.core.gep import FloydWarshallGep


def main() -> None:
    spec = FloydWarshallGep()
    n = 32768
    clusters = {"cluster1": skylake16(), "cluster2": haswell16()}
    for name, cfg in clusters.items():
        print(f"{name}: {cfg.describe()}")
    print()

    # Per-cluster tuning.
    advice = {}
    for name, cfg in clusters.items():
        advice[name] = tune(
            spec, n, cfg, omp_values=(4, 8, 16), r_shared_values=(4, 16)
        )
        print(f"best on {name}:  {advice[name].describe()}")

    # Cross-evaluation: run each cluster's chosen plan on the other.
    print("\nmistuning penalty (plan chosen for row, run on column):")
    print(f"{'':12}" + "".join(f"{c:>12}" for c in clusters))
    for src, adv in advice.items():
        r, plan, _ = adv.best
        row = []
        for dst_cfg in clusters.values():
            row.append(CostModel(dst_cfg).estimate(spec, n, r, plan).total)
        print(f"{src:<12}" + "".join(f"{v:>11.0f}s" for v in row))
    # The paper's Fig. 8 scenario: its near-optimal cluster-1 config (IM,
    # 4-way recursive, block 1024, executor-cores = all physical cores)
    # ported verbatim to cluster 2.
    naive = ExecutionPlan("im", "recursive", 4, 64, 8)  # ec defaults to all cores
    ported = CostModel(clusters["cluster2"]).estimate(spec, n, 32, naive).total
    tuned2 = advice["cluster2"].best[2]
    print(
        f"\nporting the paper's cluster-1 config (IM 4-way b=1024, "
        f"executor-cores=all) to cluster2: {ported:.0f}s — "
        f"{ported / tuned2:.1f}x its tuned optimum (the paper measured ~3.3x)."
    )
    print(
        "the advisor avoids that trap: its plans cap concurrent OpenMP "
        "tasks, which ports far better across the two machines."
    )

    # Sensitivity grid (Table II flavour) for cluster 1.
    print("\ncluster1 sensitivity, FW-APSP IM 16-way b=1024 (seconds):")
    model = CostModel(clusters["cluster1"])
    omps = (1, 4, 16, 32)
    header = "ec \\ omp"
    print(f"{header:>9}" + "".join(f"{o:>9}" for o in omps))
    for ec in (2, 8, 32):
        cells = [
            model.estimate(
                spec, n, 32,
                ExecutionPlan("im", "recursive", 16, 64, omp, executor_cores=ec),
            ).total
            for omp in omps
        ]
        print(f"{ec:>9}" + "".join(f"{v:>9.0f}" for v in cells))


if __name__ == "__main__":
    main()
