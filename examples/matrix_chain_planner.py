"""Beyond GEP: distributed matrix-chain planning (paper §VI future work).

The parenthesis-problem DP family lies outside GEP (its recurrence runs
over interval lengths, not a pivot), and the paper names it the next
class to bring onto the framework.  This example plans the cheapest
evaluation order of a long matrix chain three ways and cross-checks
them:

1. the classic iterative DP,
2. the divide-&-conquer evaluation order,
3. the distributed wavefront driver on the sparkle engine (tile
   diagonals as parallel map stages, staged through shared storage —
   the same machinery as the Collect-Broadcast GEP driver).

Run:  python examples/matrix_chain_planner.py
"""

import numpy as np

from repro.core.parenthesis import (
    matrix_chain_order,
    parenthesis_solve,
    render_parenthesization,
)
from repro.core.parenthesis_spark import parenthesis_solve_spark
from repro.sparkle import SparkleContext


def main() -> None:
    rng = np.random.default_rng(2026)
    m = 40  # matrices in the chain
    dims = rng.integers(8, 512, size=m + 1).astype(float)
    print(f"matrix chain: {m} matrices, dims {dims[:4].astype(int).tolist()}...")

    naive = float(np.sum(dims[0] * dims[1:-1] * dims[2:]))  # left-to-right
    cost, bracketing = matrix_chain_order(dims)
    print(f"left-to-right evaluation: {naive:,.0f} scalar multiplications")
    print(f"optimal order:            {cost:,.0f}  ({naive / cost:.1f}x cheaper)")

    def merge_cost(i, ks, j):
        return dims[i] * dims[ks] * dims[j]

    n = dims.size
    c_rec, _ = parenthesis_solve(n, merge_cost, method="recursive")
    assert c_rec[0, n - 1] == cost
    print("divide-&-conquer evaluation agrees ✓")

    with SparkleContext(num_executors=4, cores_per_executor=2) as sc:
        c_dist, split = parenthesis_solve_spark(n, merge_cost, sc, r=5)
        jobs = len(sc.metrics.jobs)
    assert c_dist[0, n - 1] == cost
    print(f"distributed wavefront agrees ✓ ({jobs} diagonal stages)")

    small = render_parenthesization(split[:8, :8], 0, 7)
    print(f"\noptimal bracketing of the first 7 matrices: {small}")


if __name__ == "__main__":
    main()
