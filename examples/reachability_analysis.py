"""Reachability analysis: transitive closure over the boolean semiring.

Warshall's algorithm is the third GEP instance the paper names (via the
Aho-Hopcroft-Ullman closed-semiring framework).  A build-system /
dependency-audit flavoured example: which tasks can influence which,
which pairs are mutually dependent, and what a new edge changes —
computed distributively and verified against boolean matrix squaring.

Run:  python examples/reachability_analysis.py
"""

import numpy as np

from repro import SparkleContext, semiring_closure, transitive_closure
from repro.baselines import boolean_closure_by_squaring
from repro.workloads import layered_dag_weights, scale_free_weights


def main() -> None:
    # A layered pipeline DAG (e.g. build stages) plus a few feedback arcs.
    layers, width = 5, 6
    n = layers * width
    w = layered_dag_weights(layers, width, density=0.45, seed=9)
    adj = np.isfinite(w) & ~np.eye(n, dtype=bool)
    # Feedback arcs guaranteed to close cycles: reverse three edges of
    # existing forward paths.
    from repro.baselines import boolean_closure_by_squaring as _closure

    fwd = _closure(adj) & ~np.eye(n, dtype=bool)
    pairs = np.argwhere(fwd)
    rng = np.random.default_rng(1)
    for u, v in pairs[rng.choice(len(pairs), 3, replace=False)]:
        adj[v, u] = True
    print(f"dependency graph: {n} tasks, {int(adj.sum())} edges")

    with SparkleContext(num_executors=3, cores_per_executor=2) as sc:
        closure, report = transitive_closure(
            adj, engine="spark", sc=sc, r=3, strategy="im", return_report=True
        )
    print(f"closure computed distributively in {report.wall_seconds:.2f}s")

    np.testing.assert_array_equal(closure, boolean_closure_by_squaring(adj))
    print("matches boolean matrix-squaring closure ✓")

    # Impact analysis: what does task 0 influence, what reaches the sink?
    influenced = int(closure[0].sum()) - 1
    sink = n - 1
    upstream = int(closure[:, sink].sum()) - 1
    print(f"task 0 influences {influenced} downstream tasks")
    print(f"task {sink} depends on {upstream} upstream tasks")

    # Cycles introduced by the feedback arcs: mutually reachable pairs.
    mutual = closure & closure.T & ~np.eye(n, dtype=bool)
    cycles = int(mutual.sum()) // 2
    print(f"mutually-dependent pairs (cycle members): {cycles}")

    # The same question over a scale-free call graph, via the generic
    # semiring API (boolean fold == reachability).
    sf = scale_free_weights(40, attach=2, seed=4)
    sf_adj = np.isfinite(sf)
    reach = semiring_closure(sf_adj, "boolean", engine="local", r=4)
    frac = reach.sum() / reach.size
    print(f"\nscale-free call graph (40 nodes): {frac:.0%} of pairs connected")


if __name__ == "__main__":
    main()
