"""Watch the paper's §IV derivations run: from 2-way to r-way R-DP.

Shows both design methodologies on Gaussian elimination:

1. inline-and-optimize — start from the standard 2-way algorithm
   (AutoGen's output), inline each call by one recursion level, and let
   the four dependency rules compress the calls into minimal parallel
   stages (the paper's Fig. 3 → Fig. 4 refinement);
2. polyhedral — mono-parametric tiling, index-set splitting (the
   A/B/C/D family *emerges* from output/input tile overlap), and
   Bernstein dependence analysis, producing the same schedule.

Run:  python examples/derive_algorithms.py
"""

from repro.core.autogen import derive_by_inlining, rway_algorithm, two_way_algorithm
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.poly import index_set_split, poly_schedule


def main() -> None:
    ge = GaussianEliminationGep()

    print("== the standard 2-way R-DP for GE (AutoGen output) ==")
    print(two_way_algorithm(ge).render())

    print("\n== inline once + optimize: the derived 4-way program ==")
    derived = derive_by_inlining(ge, 2)
    direct = rway_algorithm(ge, 4, unit=4)
    print(f"derived stages: {derived.num_stages}; "
          f"directly-generated 4-way stages: {direct.num_stages}")
    key = lambda c: (c.case, c.x, c.u, c.v, c.w)  # noqa: E731
    same = {key(c) for c in derived.calls} == {key(c) for c in direct.calls}
    print(f"call sets identical: {same}")
    print("\nfirst two stages of the 4-way program (paper Fig. 4 shape):")
    for idx, stage in enumerate(direct.stages()[:2], start=1):
        print(f"  stage {idx}: " + "; ".join(str(c) for c in stage))

    print("\n== methodology 2: index-set splitting ==")
    for fn in index_set_split(ge):
        print(
            f"  function {fn.name}: row-aliased={fn.row_aliased}, "
            f"col-aliased={fn.col_aliased}, disjoint operands "
            f"{fn.reads_disjoint or '()'}, needs Σ_G mask={fn.needs_sigma_mask}"
        )

    print("\n== the two methodologies agree (both benchmarks, r = 3) ==")
    for spec in (ge, FloydWarshallGep()):
        a = [
            {(c.case, (c.x.i0, c.x.j0)) for c in st}
            for st in rway_algorithm(spec, 3).stages()
        ]
        p = [
            {(t.case, (t.ib, t.jb)) for t in st}
            for st in poly_schedule(spec, 3)
        ]
        print(f"  {spec.name}: schedules equal = {a == p} "
              f"({len(a)} stages)")


if __name__ == "__main__":
    main()
