"""Quickstart: distributed Floyd-Warshall on the sparkle engine.

Builds a random directed graph, solves all-pairs shortest paths four
ways (reference, local blocked, distributed IM, distributed CB),
verifies they agree with scipy, and prints what the engine did
(stages, shuffle volume, storage traffic).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SparkleContext, floyd_warshall
from repro.baselines import scipy_shortest_paths
from repro.workloads import random_digraph_weights


def main() -> None:
    n = 96
    weights = random_digraph_weights(n, density=0.25, seed=7)
    print(f"graph: {n} vertices, {int(np.isfinite(weights).sum() - n)} edges\n")

    # Reference (single-node, vectorized) and scipy cross-check.
    d_ref = floyd_warshall(weights, engine="reference")
    assert np.allclose(d_ref, scipy_shortest_paths(weights))
    print("reference solve matches scipy.sparse.csgraph ✓")

    # Single-node blocked execution with recursive 4-way kernels.
    d_local = floyd_warshall(
        weights, engine="local", r=4, kernel="recursive", r_shared=4, base_size=16
    )
    assert np.allclose(d_local, d_ref)
    print("local blocked execution (4x4 grid, 4-way recursive kernels) ✓")

    # Distributed: both of the paper's strategies on a simulated cluster.
    for strategy in ("im", "cb"):
        with SparkleContext(num_executors=4, cores_per_executor=2) as sc:
            d, report = floyd_warshall(
                weights,
                engine="spark",
                sc=sc,
                r=4,
                kernel="recursive",
                r_shared=4,
                base_size=16,
                strategy=strategy,
                return_report=True,
            )
            assert np.allclose(d, d_ref)
            m = report.engine_metrics
            print(
                f"distributed {strategy.upper():>2}: jobs={len(m.jobs)} "
                f"stages={m.total_stages} tasks={m.total_tasks} "
                f"shuffle={m.total_shuffle_bytes / 1e6:.1f} MB "
                f"storage={m.storage_bytes_written / 1e6:.1f} MB "
                f"({report.wall_seconds:.2f}s) ✓"
            )

    print(f"\nexample distance: d[0, {n - 1}] = {d_ref[0, n - 1]:.3f}")


if __name__ == "__main__":
    main()
