"""Road-network routing: APSP on a grid-with-shortcuts graph.

The transportation use case the paper's §V-A cites for FW-APSP: an
asymmetric road grid (one-way effects) with highway shortcuts.  Shows
the full workflow a routing service would use:

1. generate the network and tune (r, kernel, strategy) for the target
   cluster with the analytical model;
2. run the distributed solve with the recommended recursive kernels;
3. answer point-to-point queries with path reconstruction;
4. sanity-check against networkx Dijkstra.

Run:  python examples/road_network_apsp.py
"""

import numpy as np

from repro import SparkleContext, floyd_warshall, tune
from repro.baselines import networkx_apsp
from repro.cluster import laptop
from repro.core import reconstruct_path
from repro.core.gep import FloydWarshallGep
from repro.workloads import grid_road_network


def main() -> None:
    rows, cols = 8, 12
    n = rows * cols
    weights = grid_road_network(rows, cols, diagonal_shortcuts=0.08, seed=3)
    print(f"road network: {rows}x{cols} grid, {n} intersections")

    # 1. What should we run on this machine?  (The paper's tuning story,
    #    §V-C: the right r / r_shared / threads depend on the hardware.)
    advice = tune(
        FloydWarshallGep(),
        4096,  # plan for the production problem size
        laptop(),
        omp_values=(2, 4, 8),
        r_shared_values=(2, 4),
    )
    print(f"tuning advisor (production size): {advice.describe()}")

    # 2. Distributed solve at demo scale with the advised kernel family.
    plan = advice.best[1]
    with SparkleContext(num_executors=2, cores_per_executor=4) as sc:
        dist, report = floyd_warshall(
            weights,
            engine="spark",
            sc=sc,
            r=4,
            kernel=plan.kernel,
            r_shared=max(2, plan.r_shared),
            base_size=12,
            omp_threads=plan.omp_threads,
            strategy=plan.strategy,
            return_report=True,
        )
    print(
        f"solved {n}x{n} APSP via {report.strategy.upper()} "
        f"({report.kernel['kind']} kernels) in {report.wall_seconds:.2f}s"
    )

    # 3. Queries: corner-to-corner route.
    src, dst = 0, n - 1
    path = reconstruct_path(dist, weights, src, dst)
    hops = " -> ".join(
        f"({v // cols},{v % cols})" for v in path[: min(len(path), 6)]
    )
    more = "" if len(path) <= 6 else f" -> ... ({len(path)} stops)"
    print(f"fastest route {src}->{dst}: cost {dist[src, dst]:.2f}: {hops}{more}")

    # Network statistics a traffic planner would read off the APSP table.
    finite = dist[np.isfinite(dist)]
    ecc = np.max(np.where(np.isfinite(dist), dist, 0), axis=1)
    print(
        f"diameter {finite.max():.2f}, mean travel cost {finite.mean():.2f}, "
        f"most central intersection: {int(np.argmin(ecc))}"
    )

    # 4. Independent validation.
    assert np.allclose(dist, networkx_apsp(weights))
    print("matches networkx Dijkstra ✓")


if __name__ == "__main__":
    main()
